#include "mpi/mpi.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <numeric>

#include "mpi/coll.hpp"
#include "mpi/optrace.hpp"
#include "net/combining.hpp"

namespace sp::mpi {

namespace {
[[nodiscard]] sim::TimeNs copy_cost(const sim::MachineConfig& cfg, std::size_t bytes) {
  return cfg.copy_call_ns +
         static_cast<sim::TimeNs>(std::llround(cfg.copy_ns_per_byte * static_cast<double>(bytes)));
}

/// RAII scope turning one MPI public call into a kMpiEnter/kMpiExit telemetry
/// span plus a Hist::kMpiCallNs sample. With telemetry disabled each end of
/// the scope costs exactly one null test; nested calls (collectives issuing
/// sends) nest correctly in the Chrome exporter.
class MpiCallScope {
 public:
  MpiCallScope(sim::NodeRuntime& node, sim::MpiCall call) noexcept
      : node_(node), call_(call) {
    if (node_.telemetry != nullptr) {
      start_ = node_.sim.now();
      node_.telemetry->emit(start_, node_.node, sim::Ev::kMpiEnter,
                            static_cast<std::uint64_t>(call_));
    }
  }
  ~MpiCallScope() {
    if (node_.telemetry != nullptr) {
      const sim::TimeNs now = node_.sim.now();
      const auto dur = static_cast<std::uint64_t>(now - start_);
      node_.telemetry->emit(now, node_.node, sim::Ev::kMpiExit,
                            static_cast<std::uint64_t>(call_), dur);
      node_.telemetry->record_hist(sim::Hist::kMpiCallNs, node_.node, dur);
    }
  }
  MpiCallScope(const MpiCallScope&) = delete;
  MpiCallScope& operator=(const MpiCallScope&) = delete;

 private:
  sim::NodeRuntime& node_;
  sim::MpiCall call_;
  sim::TimeNs start_ = 0;
};

/// RAII span for one resolved collective algorithm: a kCollBegin/kCollEnd
/// telemetry span (nested inside the MpiCallScope of the public call) plus
/// the per-algorithm invocation counter. Free with telemetry disabled.
class CollScope {
 public:
  CollScope(sim::NodeRuntime& node, sim::CollAlgo algo, std::uint64_t payload_bytes) noexcept
      : node_(node), algo_(algo) {
    if (node_.telemetry != nullptr) {
      start_ = node_.sim.now();
      node_.telemetry->record_coll(node_.node, algo_);
      node_.telemetry->emit(start_, node_.node, sim::Ev::kCollBegin,
                            static_cast<std::uint64_t>(algo_), payload_bytes);
    }
  }
  ~CollScope() {
    if (node_.telemetry != nullptr) {
      const sim::TimeNs now = node_.sim.now();
      node_.telemetry->emit(now, node_.node, sim::Ev::kCollEnd,
                            static_cast<std::uint64_t>(algo_),
                            static_cast<std::uint64_t>(now - start_));
    }
  }
  CollScope(const CollScope&) = delete;
  CollScope& operator=(const CollScope&) = delete;

 private:
  sim::NodeRuntime& node_;
  sim::CollAlgo algo_;
  sim::TimeNs start_ = 0;
};

/// Depth guard for op-trace recording (DESIGN.md §17): only the outermost
/// public MPI call records. The point-to-point traffic collectives issue
/// internally is suppressed, so a replay re-runs whatever algorithm the
/// what-if config selects instead of the one that happened to run here.
class RecordScope {
 public:
  RecordScope(optrace::Recorder* rec, int& depth) noexcept
      : armed_(rec != nullptr && depth == 0), depth_(depth) {
    ++depth_;
  }
  ~RecordScope() { --depth_; }
  [[nodiscard]] bool armed() const noexcept { return armed_; }
  RecordScope(const RecordScope&) = delete;
  RecordScope& operator=(const RecordScope&) = delete;

 private:
  bool armed_;
  int& depth_;
};

std::int64_t rec_p2p(optrace::Recorder* rec, int rank, optrace::OpKind k, const Comm& c,
                     int peer, int tag, Datatype d, std::size_t count) {
  optrace::Op op;
  op.kind = k;
  op.comm = rec->comm_index(rank, c.ctx());
  op.peer = peer;
  op.tag = tag;
  op.dtype = static_cast<std::int32_t>(d);
  op.count = static_cast<std::int64_t>(count);
  return rec->push(rank, op);
}

void rec_coll(optrace::Recorder* rec, int rank, optrace::OpKind k, const Comm& c, int root,
              Datatype d, Op redop, std::size_t count, std::vector<std::int64_t> vec = {}) {
  optrace::Op op;
  op.kind = k;
  op.comm = rec->comm_index(rank, c.ctx());
  op.peer = root;
  op.dtype = static_cast<std::int32_t>(d);
  op.redop = static_cast<std::int32_t>(redop);
  op.count = static_cast<std::int64_t>(count);
  op.vec = std::move(vec);
  rec->push(rank, op);
}

void rec_wait(optrace::Recorder* rec, int rank, std::int64_t target) {
  optrace::Op op;
  op.kind = optrace::OpKind::kWait;
  op.target = target;
  rec->push(rank, op);
}
}  // namespace

#define SP_MPI_CALL(name) MpiCallScope sp_mpi_call_scope_(node_, sim::MpiCall::name)

Mpi::Mpi(sim::NodeRuntime& node, mpci::Channel& channel, int task_id, int num_tasks)
    : node_(node), channel_(channel), task_id_(task_id) {
  std::vector<int> tasks(static_cast<std::size_t>(num_tasks));
  std::iota(tasks.begin(), tasks.end(), 0);
  world_ = Comm(0, std::move(tasks), task_id);
}

int Mpi::coll_tag() { return kCollTagBase + static_cast<int>(coll_seq_++ % 4096); }

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

void Mpi::start_send_common(mpci::SendReq& req, const void* buf, std::size_t bytes, int dst,
                            int tag, const Comm& c, mpci::Mode mode, bool blocking) {
  node_.app_charge(node_.cfg.mpi_call_overhead_ns);
  req.dst = c.task_of(dst);
  req.src_in_comm = c.rank();
  req.ctx = c.ctx();
  req.tag = tag;
  req.buf = static_cast<const std::byte*>(buf);
  req.len = bytes;
  req.mode = mode;
  req.blocking = blocking;
  channel_.start_send(req);
}

void Mpi::start_bsend(mpci::SendReq& req, const void* buf, std::size_t bytes, int dst, int tag,
                      const Comm& c, bool blocking) {
  node_.app_charge(node_.cfg.mpi_call_overhead_ns);
  std::byte* slot_buf = nullptr;
  const int slot = channel_.bsend_pool().alloc(bytes, &slot_buf);
  if (slot < 0) {
    throw mpci::FatalMpiError("MPI_Bsend: attach buffer exhausted (MPI_ERR_BUFFER)");
  }
  // The buffered-mode copy into the attach buffer (Fig. 8).
  node_.app_charge(copy_cost(node_.cfg, bytes));
  if (bytes > 0) std::memcpy(slot_buf, buf, bytes);
  req.bsend_slot = slot;
  req.dst = c.task_of(dst);
  req.src_in_comm = c.rank();
  req.ctx = c.ctx();
  req.tag = tag;
  req.buf = slot_buf;
  req.len = bytes;
  req.mode = mpci::Mode::kBuffered;
  req.blocking = blocking;
  channel_.start_send(req);
}

void Mpi::wait_send(mpci::SendReq& req) {
  assert(node_.thread != nullptr);
  while (!req.complete) {
    channel_.progress(req);
    if (req.complete) break;
    req.cond.wait(*node_.thread);
  }
}

void Mpi::wait_recv(mpci::RecvReq& req, Status* st) {
  assert(node_.thread != nullptr);
  while (!req.complete) {
    if (req.poll && req.poll()) break;
    req.wait_cond().wait(*node_.thread);
  }
  if (st != nullptr) {
    *st = req.status;
    st->truncated = req.truncated;
  }
}

void Mpi::send(const void* buf, std::size_t count, Datatype d, int dst, int tag,
               const Comm& c) {
  SP_MPI_CALL(kSend);
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) rec_p2p(rec_, task_id_, optrace::OpKind::kSend, c, dst, tag, d, count);
  mpci::SendReq req;
  start_send_common(req, buf, count * datatype_size(d), dst, tag, c, mpci::Mode::kStandard,
                    /*blocking=*/true);
  wait_send(req);
}

void Mpi::ssend(const void* buf, std::size_t count, Datatype d, int dst, int tag,
                const Comm& c) {
  SP_MPI_CALL(kSsend);
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) rec_p2p(rec_, task_id_, optrace::OpKind::kSsend, c, dst, tag, d, count);
  mpci::SendReq req;
  start_send_common(req, buf, count * datatype_size(d), dst, tag, c, mpci::Mode::kSync,
                    /*blocking=*/true);
  wait_send(req);
}

void Mpi::rsend(const void* buf, std::size_t count, Datatype d, int dst, int tag,
                const Comm& c) {
  SP_MPI_CALL(kRsend);
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) rec_p2p(rec_, task_id_, optrace::OpKind::kRsend, c, dst, tag, d, count);
  mpci::SendReq req;
  start_send_common(req, buf, count * datatype_size(d), dst, tag, c, mpci::Mode::kReady,
                    /*blocking=*/true);
  wait_send(req);
}

void Mpi::bsend(const void* buf, std::size_t count, Datatype d, int dst, int tag,
                const Comm& c) {
  SP_MPI_CALL(kBsend);
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) rec_p2p(rec_, task_id_, optrace::OpKind::kBsend, c, dst, tag, d, count);
  gc_orphans();
  auto req = std::make_unique<mpci::SendReq>();
  start_bsend(*req, buf, count * datatype_size(d), dst, tag, c, /*blocking=*/false);
  orphans_.push_back(std::move(req));
}

void Mpi::recv(void* buf, std::size_t count, Datatype d, int src, int tag, const Comm& c,
               Status* st) {
  SP_MPI_CALL(kRecv);
  RecordScope rs(rec_, rec_depth_);
  std::int64_t tidx = -1;
  if (rs.armed()) {
    tidx = rec_p2p(rec_, task_id_, optrace::OpKind::kRecv, c, src, tag, d, count);
  }
  node_.app_charge(node_.cfg.mpi_call_overhead_ns);
  mpci::RecvReq req;
  req.ctx = c.ctx();
  req.src_sel = src;
  req.tag_sel = tag;
  req.buf = static_cast<std::byte*>(buf);
  req.cap = count * datatype_size(d);
  channel_.post_recv(req);
  if (tidx >= 0) {
    // Capture the concrete match so a replay can re-post wildcards exactly.
    Status matched;
    wait_recv(req, &matched);
    rec_->set_matched(task_id_, tidx, matched);
    if (st != nullptr) *st = matched;
  } else {
    wait_recv(req, st);
  }
}

void Mpi::sendrecv(const void* sbuf, std::size_t scount, int dst, int stag, void* rbuf,
                   std::size_t rcount, int src, int rtag, Datatype d, const Comm& c,
                   Status* st) {
  SP_MPI_CALL(kSendrecv);
  Request r = irecv(rbuf, rcount, d, src, rtag, c);
  send(sbuf, scount, d, dst, stag, c);
  wait(r, st);
}

Request Mpi::isend(const void* buf, std::size_t count, Datatype d, int dst, int tag,
                   const Comm& c) {
  SP_MPI_CALL(kIsend);
  RecordScope rs(rec_, rec_depth_);
  Request r;
  if (rs.armed()) {
    r.trace_idx_ = rec_p2p(rec_, task_id_, optrace::OpKind::kIsend, c, dst, tag, d, count);
  }
  r.send_ = std::make_unique<mpci::SendReq>();
  start_send_common(*r.send_, buf, count * datatype_size(d), dst, tag, c,
                    mpci::Mode::kStandard, /*blocking=*/false);
  return r;
}

Request Mpi::issend(const void* buf, std::size_t count, Datatype d, int dst, int tag,
                    const Comm& c) {
  SP_MPI_CALL(kIssend);
  RecordScope rs(rec_, rec_depth_);
  Request r;
  if (rs.armed()) {
    r.trace_idx_ = rec_p2p(rec_, task_id_, optrace::OpKind::kIssend, c, dst, tag, d, count);
  }
  r.send_ = std::make_unique<mpci::SendReq>();
  start_send_common(*r.send_, buf, count * datatype_size(d), dst, tag, c, mpci::Mode::kSync,
                    /*blocking=*/false);
  return r;
}

Request Mpi::irsend(const void* buf, std::size_t count, Datatype d, int dst, int tag,
                    const Comm& c) {
  SP_MPI_CALL(kIrsend);
  RecordScope rs(rec_, rec_depth_);
  Request r;
  if (rs.armed()) {
    r.trace_idx_ = rec_p2p(rec_, task_id_, optrace::OpKind::kIrsend, c, dst, tag, d, count);
  }
  r.send_ = std::make_unique<mpci::SendReq>();
  start_send_common(*r.send_, buf, count * datatype_size(d), dst, tag, c, mpci::Mode::kReady,
                    /*blocking=*/false);
  return r;
}

Request Mpi::ibsend(const void* buf, std::size_t count, Datatype d, int dst, int tag,
                    const Comm& c) {
  SP_MPI_CALL(kIbsend);
  RecordScope rs(rec_, rec_depth_);
  Request r;
  if (rs.armed()) {
    r.trace_idx_ = rec_p2p(rec_, task_id_, optrace::OpKind::kIbsend, c, dst, tag, d, count);
  }
  r.send_ = std::make_unique<mpci::SendReq>();
  start_bsend(*r.send_, buf, count * datatype_size(d), dst, tag, c, /*blocking=*/false);
  return r;
}

Request Mpi::irecv(void* buf, std::size_t count, Datatype d, int src, int tag, const Comm& c) {
  SP_MPI_CALL(kIrecv);
  RecordScope rs(rec_, rec_depth_);
  node_.app_charge(node_.cfg.mpi_call_overhead_ns);
  Request r;
  if (rs.armed()) {
    r.trace_idx_ = rec_p2p(rec_, task_id_, optrace::OpKind::kIrecv, c, src, tag, d, count);
  }
  r.recv_ = std::make_unique<mpci::RecvReq>();
  r.recv_->ctx = c.ctx();
  r.recv_->src_sel = src;
  r.recv_->tag_sel = tag;
  r.recv_->buf = static_cast<std::byte*>(buf);
  r.recv_->cap = count * datatype_size(d);
  channel_.post_recv(*r.recv_);
  return r;
}

void Mpi::finish_request(Request& r, Status* st) {
  if (r.send_) {
    if (r.send_->bsend_slot >= 0 && !r.send_->bsend_released) {
      // MPI_Wait on an ibsend completes once the message is buffered, but the
      // request object must survive until the slot drains; orphan it.
      orphans_.push_back(std::move(r.send_));
    }
    r.send_.reset();
    // MPI defines the status of a completed send as "empty"; leaving the
    // caller's struct untouched (stale stack garbage) was a real gap the ABI
    // conformance suite flushed out.
    if (st != nullptr) *st = Status{};
  } else if (r.recv_) {
    if (rec_ != nullptr && r.trace_idx_ >= 0) {
      Status matched = r.recv_->status;
      matched.truncated = r.recv_->truncated;
      rec_->set_matched(task_id_, r.trace_idx_, matched);
    }
    if (st != nullptr) {
      *st = r.recv_->status;
      st->truncated = r.recv_->truncated;
    }
    r.recv_.reset();
  }
  if (r.on_complete_) {
    auto fn = std::move(r.on_complete_);
    r.on_complete_ = nullptr;
    fn();
  }
  r.staging_.reset();
  r.trace_idx_ = -1;
}

void Mpi::wait(Request& r, Status* st) {
  SP_MPI_CALL(kWait);
  RecordScope rs(rec_, rec_depth_);
  node_.app_charge(node_.cfg.mpi_call_overhead_ns / 2);
  if (!r.send_ && !r.recv_) {
    // Inactive persistent requests complete immediately (MPI semantics),
    // with an empty status.
    assert(r.persistent() && "wait on an inactive request");
    if (st != nullptr) *st = Status{};
    return;
  }
  if (rs.armed() && r.trace_idx_ >= 0) rec_wait(rec_, task_id_, r.trace_idx_);
  if (r.send_) {
    wait_send(*r.send_);
  } else {
    wait_recv(*r.recv_, nullptr);
  }
  finish_request(r, st);
}

bool Mpi::check_complete(Request& r) {
  if (r.send_) {
    channel_.progress(*r.send_);
    return r.send_->complete;
  }
  if (r.recv_) {
    return r.recv_->complete || (r.recv_->poll && r.recv_->poll());
  }
  return true;  // inactive
}

bool Mpi::test(Request& r, Status* st) {
  SP_MPI_CALL(kTest);
  RecordScope rs(rec_, rec_depth_);
  node_.app_charge(node_.cfg.mpi_call_overhead_ns / 2);
  if (!r.send_ && !r.recv_) {
    assert(r.persistent() && "test on an inactive request");
    if (st != nullptr) *st = Status{};
    return true;
  }
  if (!check_complete(r)) return false;
  // Only a successful test records: the false polls are no-ops to a replay.
  if (rs.armed() && r.trace_idx_ >= 0) rec_wait(rec_, task_id_, r.trace_idx_);
  finish_request(r, st);
  return true;
}

void Mpi::waitall(Request* reqs, std::size_t n) {
  waitall(reqs, n, static_cast<Status*>(nullptr));
}

void Mpi::waitall(Request* reqs, std::size_t n, Status* sts) {
  SP_MPI_CALL(kWaitall);
  for (std::size_t i = 0; i < n; ++i) {
    if (sts != nullptr) sts[i] = Status{};  // empty for sends / inactive
    if (reqs[i].valid()) wait(reqs[i], sts != nullptr ? &sts[i] : nullptr);
  }
}

std::size_t Mpi::waitany(Request* reqs, std::size_t n, Status* st) {
  SP_MPI_CALL(kWaitany);
  RecordScope rs(rec_, rec_depth_);
  node_.app_charge(node_.cfg.mpi_call_overhead_ns / 2);
  assert(node_.thread != nullptr);
  for (;;) {
    bool any_active = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!reqs[i].valid()) continue;
      any_active = true;
      if (check_complete(reqs[i])) {
        // Record the completion the program actually observed, so the replay
        // waits in the same order.
        if (rs.armed() && reqs[i].trace_idx_ >= 0) {
          rec_wait(rec_, task_id_, reqs[i].trace_idx_);
        }
        finish_request(reqs[i], st);
        return i;
      }
    }
    if (!any_active) return n;  // MPI_UNDEFINED analogue
    // Block until any of the active requests' conditions fires. Stale
    // registrations only cause harmless spurious wakeups.
    for (std::size_t i = 0; i < n; ++i) {
      if (!reqs[i].valid()) continue;
      if (reqs[i].send_) {
        reqs[i].send_->cond.add_waiter(node_.thread);
      } else {
        reqs[i].recv_->wait_cond().add_waiter(node_.thread);
      }
    }
    node_.thread->yield_to_sim();
  }
}

bool Mpi::testall(Request* reqs, std::size_t n) {
  return testall(reqs, n, static_cast<Status*>(nullptr));
}

bool Mpi::testall(Request* reqs, std::size_t n, Status* sts) {
  SP_MPI_CALL(kTestall);
  RecordScope rs(rec_, rec_depth_);
  node_.app_charge(node_.cfg.mpi_call_overhead_ns / 2);
  for (std::size_t i = 0; i < n; ++i) {
    if (reqs[i].valid() && !check_complete(reqs[i])) return false;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (sts != nullptr) sts[i] = Status{};  // empty for sends / inactive
    if (reqs[i].valid()) {
      if (rs.armed() && reqs[i].trace_idx_ >= 0) {
        rec_wait(rec_, task_id_, reqs[i].trace_idx_);
      }
      finish_request(reqs[i], sts != nullptr ? &sts[i] : nullptr);
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Probe
// ---------------------------------------------------------------------------

bool Mpi::iprobe(int src, int tag, const Comm& c, Status* st) {
  SP_MPI_CALL(kIprobe);
  node_.app_charge(node_.cfg.mpi_call_overhead_ns / 2);
  return channel_.iprobe(c.ctx(), src, tag, st);
}

void Mpi::probe(int src, int tag, const Comm& c, Status* st) {
  SP_MPI_CALL(kProbe);
  node_.app_charge(node_.cfg.mpi_call_overhead_ns / 2);
  assert(node_.thread != nullptr);
  while (!channel_.iprobe(c.ctx(), src, tag, st)) {
    channel_.arrival_cond().wait(*node_.thread);
  }
}

// ---------------------------------------------------------------------------
// Derived datatypes (pack / unpack at the MPI layer — the paper's future work)
// ---------------------------------------------------------------------------

void Mpi::send(const void* buf, std::size_t count, const DerivedDatatype& t, int dst, int tag,
               const Comm& c) {
  const std::size_t packed = t.packed_bytes() * count;
  std::vector<std::byte> stage(packed);
  node_.app_charge(copy_cost(node_.cfg, packed));  // pack
  t.pack(buf, stage.data(), count);
  send(stage.data(), packed, Datatype::kByte, dst, tag, c);
}

void Mpi::recv(void* buf, std::size_t count, const DerivedDatatype& t, int src, int tag,
               const Comm& c, Status* st) {
  const std::size_t packed = t.packed_bytes() * count;
  std::vector<std::byte> stage(packed);
  recv(stage.data(), packed, Datatype::kByte, src, tag, c, st);
  node_.app_charge(copy_cost(node_.cfg, packed));  // unpack
  t.unpack(stage.data(), buf, count);
}

Request Mpi::isend(const void* buf, std::size_t count, const DerivedDatatype& t, int dst,
                   int tag, const Comm& c) {
  const std::size_t packed = t.packed_bytes() * count;
  auto stage = std::make_unique<std::vector<std::byte>>(packed);
  node_.app_charge(copy_cost(node_.cfg, packed));
  t.pack(buf, stage->data(), count);
  Request r = isend(stage->data(), packed, Datatype::kByte, dst, tag, c);
  r.staging_ = std::move(stage);
  return r;
}

Request Mpi::irecv(void* buf, std::size_t count, const DerivedDatatype& t, int src, int tag,
                   const Comm& c) {
  const std::size_t packed = t.packed_bytes() * count;
  auto stage = std::make_unique<std::vector<std::byte>>(packed);
  Request r = irecv(stage->data(), packed, Datatype::kByte, src, tag, c);
  auto* stage_ptr = stage.get();
  r.staging_ = std::move(stage);
  r.on_complete_ = [this, stage_ptr, buf, count, t] {
    node_.app_charge(copy_cost(node_.cfg, t.packed_bytes() * count));
    t.unpack(stage_ptr->data(), buf, count);
  };
  return r;
}

// ---------------------------------------------------------------------------
// Persistent requests
// ---------------------------------------------------------------------------

Request Mpi::send_init(const void* buf, std::size_t count, Datatype d, int dst, int tag,
                       const Comm& c) {
  Request r;
  r.persistent_ = std::make_unique<Request::PersistentSpec>();
  r.persistent_->is_send = true;
  r.persistent_->sbuf = buf;
  r.persistent_->bytes = count * datatype_size(d);
  r.persistent_->peer = dst;
  r.persistent_->tag = tag;
  r.persistent_->comm = c;
  return r;
}

Request Mpi::recv_init(void* buf, std::size_t count, Datatype d, int src, int tag,
                       const Comm& c) {
  Request r;
  r.persistent_ = std::make_unique<Request::PersistentSpec>();
  r.persistent_->is_send = false;
  r.persistent_->rbuf = buf;
  r.persistent_->bytes = count * datatype_size(d);
  r.persistent_->peer = src;
  r.persistent_->tag = tag;
  r.persistent_->comm = c;
  return r;
}

void Mpi::start(Request& r) {
  SP_MPI_CALL(kStart);
  RecordScope rs(rec_, rec_depth_);
  assert(r.persistent() && "start on a non-persistent request");
  assert(!r.send_ && !r.recv_ && "start on an already-active request");
  const auto& p = *r.persistent_;
  if (rs.armed()) {
    // A started persistent op is indistinguishable from a fresh nonblocking
    // one; record it as such (byte-typed, the spec already pre-multiplied).
    r.trace_idx_ = rec_p2p(rec_, task_id_,
                           p.is_send ? optrace::OpKind::kIsend : optrace::OpKind::kIrecv,
                           p.comm, p.peer, p.tag, Datatype::kByte, p.bytes);
  }
  if (p.is_send) {
    r.send_ = std::make_unique<mpci::SendReq>();
    start_send_common(*r.send_, p.sbuf, p.bytes, p.peer, p.tag, p.comm, p.mode,
                      /*blocking=*/false);
  } else {
    node_.app_charge(node_.cfg.mpi_call_overhead_ns);
    r.recv_ = std::make_unique<mpci::RecvReq>();
    r.recv_->ctx = p.comm.ctx();
    r.recv_->src_sel = p.peer;
    r.recv_->tag_sel = p.tag;
    r.recv_->buf = static_cast<std::byte*>(p.rbuf);
    r.recv_->cap = p.bytes;
    channel_.post_recv(*r.recv_);
  }
}

void Mpi::startall(Request* reqs, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) start(reqs[i]);
}

void Mpi::gc_orphans() {
  for (auto it = orphans_.begin(); it != orphans_.end();) {
    if ((*it)->complete && ((*it)->bsend_slot < 0 || (*it)->bsend_released)) {
      it = orphans_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Buffered mode
// ---------------------------------------------------------------------------

void Mpi::buffer_attach(void* buf, std::size_t len) {
  node_.app_charge(node_.cfg.mpi_call_overhead_ns / 2);
  channel_.bsend_pool().drained.sim = &node_.sim;
  channel_.bsend_pool().attach(static_cast<std::byte*>(buf), len);
}

void* Mpi::buffer_detach() {
  node_.app_charge(node_.cfg.mpi_call_overhead_ns / 2);
  auto& pool = channel_.bsend_pool();
  assert(node_.thread != nullptr);
  pool.drained.cond.wait_until(*node_.thread, [&pool] { return pool.empty(); });
  gc_orphans();
  return pool.detach();
}

// ---------------------------------------------------------------------------
// Collectives (decomposed into point-to-point, as the paper's MPI layer does)
// ---------------------------------------------------------------------------

// Tag discipline (see coll.hpp): every collective allocates exactly ONE
// sequence tag per call, before any early return, so ranks that live in
// different-sized split() sub-communicators — where n <= 1 holds for some
// members and not others — keep their coll_seq_ counters in lockstep.

bool Mpi::innet_coll(const Comm& c, std::uint32_t seq, int root, std::byte* buf,
                     std::size_t len, bool reduce_phase,
                     std::function<void(std::byte*, const std::byte*, std::size_t)> combine) {
  if (combining_ == nullptr || len > node_.cfg.in_network_coll_max_bytes) return false;
  // Table-entry install + doorbell on the host side, then park the rank
  // fiber until the engine's completion event fires — the same blocking
  // idiom as the RDMA channel's NIC-resident collectives.
  node_.app_charge(node_.cfg.innet_post_ns);
  bool done = false;
  sim::SimCondition cond;
  net::CombiningEngine::Op op;
  op.ctx = c.ctx();
  op.seq = seq;
  op.rank = c.rank();
  op.root = root;
  op.tasks = c.tasks();
  op.buf = buf;
  op.len = len;
  op.reduce_phase = reduce_phase;
  op.combine = std::move(combine);
  op.on_done = [this, &done, &cond] {
    node_.publish([this, &done, &cond] {
      done = true;
      cond.notify_all(node_.sim);
    });
  };
  combining_->start(std::move(op));
  assert(node_.thread != nullptr);
  while (!done) cond.wait(*node_.thread);
  node_.app_charge(node_.cfg.innet_post_ns);
  return true;
}

void Mpi::barrier(const Comm& c) {
  SP_MPI_CALL(kBarrier);
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) {
    rec_coll(rec_, task_id_, optrace::OpKind::kBarrier, c, 0, Datatype::kByte, Op::kSum, 0);
  }
  const int n = c.size();
  const int tag = coll_tag();
  if (n <= 1) return;
  const int me = c.rank();
  // Adapter-resident barrier (DESIGN.md §14.4): auto prefers the NIC when
  // the channel has one; pin kNicOffload requests it explicitly. A declined
  // offload — or a host-only channel — falls back to dissemination, so the
  // pin is safe on every backend.
  const auto pin = static_cast<coll::BarrierAlgo>(node_.cfg.coll_barrier_algo);
  // Switch-combining barrier (DESIGN.md §16): a zero-byte reduce phase
  // through the combining tree. Tried before the NIC — when both are
  // enabled the in-network path is strictly shallower.
  if (pin == coll::BarrierAlgo::kInNetwork ||
      (pin == coll::BarrierAlgo::kAuto && coll::in_network_enabled(node_.cfg))) {
    CollScope span(node_, sim::CollAlgo::kBarrierInNetwork, 0);
    if (innet_coll(c, static_cast<std::uint32_t>(tag), 0, nullptr, 0,
                   /*reduce_phase=*/true, nullptr)) {
      return;
    }
  }
  if (pin != coll::BarrierAlgo::kDissemination && pin != coll::BarrierAlgo::kInNetwork &&
      channel_.nic_offload()) {
    CollScope span(node_, sim::CollAlgo::kBarrierNicOffload, 0);
    if (channel_.nic_barrier(c.ctx(), static_cast<std::uint32_t>(tag), me, c.tasks())) {
      return;
    }
  }
  // Dissemination barrier: log2(n) rounds of sendrecv.
  for (int span = 1; span < n; span <<= 1) {
    const int to = (me + span) % n;
    const int from = (me - span % n + n) % n;
    std::byte token{};
    std::byte in{};
    sendrecv(&token, 1, to, tag, &in, 1, from, tag, Datatype::kByte, c);
  }
}

void Mpi::bcast(void* buf, std::size_t count, Datatype d, int root, const Comm& c) {
  SP_MPI_CALL(kBcast);
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) {
    rec_coll(rec_, task_id_, optrace::OpKind::kBcast, c, root, d, Op::kSum, count);
  }
  const int n = c.size();
  const int tag = coll_tag();
  if (n <= 1) return;
  const std::size_t bytes = count * datatype_size(d);
  coll::BcastAlgo algo = coll::select_bcast(node_.cfg, bytes, n);
  // Switch-combining replication (pure data movement, bitwise identical to
  // any host tree). Auto reaches here only via the topology mask; a pinned
  // kInNetwork above the table cap falls back to the host auto table.
  if (algo == coll::BcastAlgo::kInNetwork) {
    {
      CollScope innet_span(node_, sim::CollAlgo::kBcastInNetwork, bytes);
      if (innet_coll(c, static_cast<std::uint32_t>(tag), root,
                     static_cast<std::byte*>(buf), bytes, /*reduce_phase=*/false,
                     nullptr)) {
        return;
      }
    }
    algo = coll::select_bcast_host(node_.cfg, bytes, n);
  }
  // NIC offload: auto tries the adapter for small payloads (pure data
  // movement — bitwise identical to any host tree); a pinned kNicOffload is
  // attempted regardless of size and falls back to the host auto table when
  // the channel declines.
  const bool nic_capable =
      channel_.nic_offload() && bytes <= node_.cfg.rdma_nic_coll_max_bytes;
  if (algo == coll::BcastAlgo::kNicOffload ||
      (node_.cfg.coll_bcast_algo == 0 && nic_capable)) {
    if (nic_capable) {
      CollScope nic_span(node_, sim::CollAlgo::kBcastNicOffload, bytes);
      if (channel_.nic_bcast(c.ctx(), static_cast<std::uint32_t>(tag), c.rank(), root,
                             c.tasks(), static_cast<std::byte*>(buf), bytes)) {
        return;
      }
    }
    algo = coll::select_bcast_host(node_.cfg, bytes, n);
  }
  CollScope span(node_, coll::telem_id(algo), bytes);
  switch (algo) {
    case coll::BcastAlgo::kPipelined:
      coll::bcast_pipelined(*this, buf, count, d, root, c, tag, node_.cfg.coll_segment_bytes);
      break;
    case coll::BcastAlgo::kScatterAllgather:
      coll::bcast_scatter_allgather(*this, buf, count, d, root, c, tag);
      break;
    default: coll::bcast_binomial(*this, buf, count, d, root, c, tag); break;
  }
}

void Mpi::bcast(void* buf, std::size_t count, const DerivedDatatype& t, int root,
                const Comm& c) {
  // Pack at the root, broadcast the packed bytes (the nested call runs the
  // algorithm engine and owns the tag), unpack into the user layout.
  const std::size_t bytes = t.packed_bytes() * count;
  node_.app_charge(copy_cost(node_.cfg, bytes));
  std::vector<std::byte> staging(bytes);
  if (c.rank() == root) t.pack(buf, staging.data(), count);
  bcast(staging.data(), bytes, Datatype::kByte, root, c);
  if (c.rank() != root) t.unpack(staging.data(), buf, count);
}

void Mpi::reduce(const void* sendb, void* recvb, std::size_t count, Datatype d, Op op,
                 int root, const Comm& c) {
  SP_MPI_CALL(kReduce);
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) {
    rec_coll(rec_, task_id_, optrace::OpKind::kReduce, c, root, d, op, count);
  }
  const int tag = coll_tag();
  coll::reduce_binomial(*this, sendb, recvb, count, d, op, root, c, tag);
}

void Mpi::allreduce(const void* sendb, void* recvb, std::size_t count, Datatype d, Op op,
                    const Comm& c) {
  SP_MPI_CALL(kAllreduce);
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) {
    rec_coll(rec_, task_id_, optrace::OpKind::kAllreduce, c, 0, d, op, count);
  }
  const int n = c.size();
  const int tag = coll_tag();
  const std::size_t bytes = count * datatype_size(d);
  coll::AllreduceAlgo algo = coll::select_allreduce(node_.cfg, bytes, n);
  // NIC offload. Auto only offloads bitwise-exact element types: the
  // adapter's binomial combine shape differs from the host trees', and
  // float/double addition is not associative, so offloading those would
  // break cross-backend numeric equality. A pin attempts any type (the
  // NIC combine still folds in communicator rank order).
  const bool exact = d == Datatype::kByte || d == Datatype::kInt || d == Datatype::kLong;
  // Switch-combining allreduce: the fixed child-port fold IS the sequential
  // rank-order reduction, so like the NIC path, auto restricts itself to
  // bitwise-exact element types while a pin attempts anything. n > 1 keeps
  // the degenerate single-rank case on the host copy path.
  if (algo == coll::AllreduceAlgo::kInNetwork &&
      (node_.cfg.coll_allreduce_algo != 0 || exact) && n > 1) {
    {
      CollScope innet_span(node_, sim::CollAlgo::kAllreduceInNetwork, bytes);
      if (bytes > 0 && bytes <= node_.cfg.in_network_coll_max_bytes &&
          combining_ != nullptr) {
        node_.app_charge(copy_cost(node_.cfg, bytes));
        std::memcpy(recvb, sendb, bytes);
      }
      auto combine = [op, d](std::byte* into, const std::byte* from, std::size_t len) {
        reduce_apply(op, d, from, into, len / datatype_size(d));
      };
      if (innet_coll(c, static_cast<std::uint32_t>(tag), 0,
                     static_cast<std::byte*>(recvb), bytes, /*reduce_phase=*/true,
                     std::move(combine))) {
        return;
      }
    }
  }
  if (algo == coll::AllreduceAlgo::kInNetwork) {
    algo = coll::select_allreduce_host(node_.cfg, bytes, n);
  }
  const bool nic_capable = channel_.nic_offload() && n > 1 &&
                           bytes <= node_.cfg.rdma_nic_coll_max_bytes;
  if (algo == coll::AllreduceAlgo::kNicOffload ||
      (node_.cfg.coll_allreduce_algo == 0 && nic_capable && exact)) {
    if (nic_capable) {
      CollScope nic_span(node_, sim::CollAlgo::kAllreduceNicOffload, bytes);
      if (bytes > 0) {
        node_.app_charge(copy_cost(node_.cfg, bytes));
        std::memcpy(recvb, sendb, bytes);
      }
      auto combine = [op, d](std::byte* into, const std::byte* from, std::size_t len) {
        reduce_apply(op, d, from, into, len / datatype_size(d));
      };
      if (channel_.nic_allreduce(c.ctx(), static_cast<std::uint32_t>(tag), c.rank(),
                                 c.tasks(), static_cast<std::byte*>(recvb), bytes,
                                 std::move(combine))) {
        return;
      }
    }
    algo = coll::select_allreduce_host(node_.cfg, bytes, n);
  }
  CollScope span(node_, coll::telem_id(algo), bytes);
  switch (algo) {
    case coll::AllreduceAlgo::kRecursiveDoubling:
      coll::allreduce_recursive_doubling(*this, sendb, recvb, count, d, op, c, tag);
      break;
    case coll::AllreduceAlgo::kRabenseifner:
      coll::allreduce_rabenseifner(*this, sendb, recvb, count, d, op, c, tag);
      break;
    default: coll::allreduce_reduce_bcast(*this, sendb, recvb, count, d, op, c, tag); break;
  }
}

void Mpi::gather(const void* sendb, std::size_t count, void* recvb, Datatype d, int root,
                 const Comm& c) {
  SP_MPI_CALL(kGather);
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) {
    rec_coll(rec_, task_id_, optrace::OpKind::kGather, c, root, d, Op::kSum, count);
  }
  const std::size_t bytes = count * datatype_size(d);
  const int tag = coll_tag();
  if (c.rank() == root) {
    auto* out = static_cast<std::byte*>(recvb);
    for (int r = 0; r < c.size(); ++r) {
      if (r == root) {
        if (bytes > 0) std::memcpy(out + static_cast<std::size_t>(r) * bytes, sendb, bytes);
      } else {
        recv(out + static_cast<std::size_t>(r) * bytes, count, d, r, tag, c);
      }
    }
  } else {
    send(sendb, count, d, root, tag, c);
  }
}

void Mpi::scatter(const void* sendb, std::size_t count, void* recvb, Datatype d, int root,
                  const Comm& c) {
  SP_MPI_CALL(kScatter);
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) {
    rec_coll(rec_, task_id_, optrace::OpKind::kScatter, c, root, d, Op::kSum, count);
  }
  const std::size_t bytes = count * datatype_size(d);
  const int tag = coll_tag();
  if (c.rank() == root) {
    const auto* in = static_cast<const std::byte*>(sendb);
    for (int r = 0; r < c.size(); ++r) {
      if (r == root) {
        if (bytes > 0) std::memcpy(recvb, in + static_cast<std::size_t>(r) * bytes, bytes);
      } else {
        send(in + static_cast<std::size_t>(r) * bytes, count, d, r, tag, c);
      }
    }
  } else {
    recv(recvb, count, d, root, tag, c);
  }
}

void Mpi::allgather(const void* sendb, std::size_t count, void* recvb, Datatype d,
                    const Comm& c) {
  SP_MPI_CALL(kAllgather);
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) {
    rec_coll(rec_, task_id_, optrace::OpKind::kAllgather, c, 0, d, Op::kSum, count);
  }
  const int n = c.size();
  const std::size_t bytes = count * datatype_size(d);
  auto* out = static_cast<std::byte*>(recvb);
  const int me = c.rank();
  const int tag = coll_tag();
  if (bytes > 0) std::memcpy(out + static_cast<std::size_t>(me) * bytes, sendb, bytes);
  if (n <= 1) return;
  // Ring: in step k, forward the block received in step k-1.
  for (int k = 0; k < n - 1; ++k) {
    const int to = (me + 1) % n;
    const int from = (me - 1 + n) % n;
    const int send_block = (me - k + n) % n;
    const int recv_block = (me - k - 1 + n) % n;
    sendrecv(out + static_cast<std::size_t>(send_block) * bytes, count, to, tag,
             out + static_cast<std::size_t>(recv_block) * bytes, count, from, tag, d, c);
  }
}

void Mpi::alltoall(const void* sendb, std::size_t count, void* recvb, Datatype d,
                   const Comm& c) {
  SP_MPI_CALL(kAlltoall);
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) {
    rec_coll(rec_, task_id_, optrace::OpKind::kAlltoall, c, 0, d, Op::kSum, count);
  }
  const int n = c.size();
  const int tag = coll_tag();
  const std::size_t bytes = count * datatype_size(d);
  const coll::AlltoallAlgo algo = coll::select_alltoall(node_.cfg, bytes, n);
  CollScope span(node_, coll::telem_id(algo), bytes * static_cast<std::uint64_t>(n));
  if (algo == coll::AlltoallAlgo::kBruck) {
    coll::alltoall_bruck(*this, sendb, count, recvb, d, c, tag);
  } else {
    coll::alltoall_pairwise(*this, sendb, count, recvb, d, c, tag);
  }
}

void Mpi::alltoallv(const void* sendb, const std::size_t* scounts, const std::size_t* sdispls,
                    void* recvb, const std::size_t* rcounts, const std::size_t* rdispls,
                    Datatype d, const Comm& c) {
  SP_MPI_CALL(kAlltoallv);
  RecordScope rs(rec_, rec_depth_);
  const int n = c.size();
  if (rs.armed()) {
    std::vector<std::int64_t> v;
    v.reserve(2 * static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) v.push_back(static_cast<std::int64_t>(scounts[r]));
    for (int r = 0; r < n; ++r) v.push_back(static_cast<std::int64_t>(rcounts[r]));
    rec_coll(rec_, task_id_, optrace::OpKind::kAlltoallv, c, 0, d, Op::kSum, 0, std::move(v));
  }
  const std::size_t esz = datatype_size(d);
  const auto* in = static_cast<const std::byte*>(sendb);
  auto* out = static_cast<std::byte*>(recvb);
  const int me = c.rank();
  if (scounts[me] > 0) {
    std::memcpy(out + rdispls[me] * esz, in + sdispls[me] * esz, scounts[me] * esz);
  }
  const int tag = coll_tag();
  for (int k = 1; k < n; ++k) {
    const int to = (me + k) % n;
    const int from = (me - k + n) % n;
    Request r = irecv(out + rdispls[from] * esz, rcounts[from], d, from, tag, c);
    send(in + sdispls[to] * esz, scounts[to], d, to, tag, c);
    wait(r);
  }
}

void Mpi::scan(const void* sendb, void* recvb, std::size_t count, Datatype d, Op op,
               const Comm& c) {
  SP_MPI_CALL(kScan);
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) {
    rec_coll(rec_, task_id_, optrace::OpKind::kScan, c, 0, d, op, count);
  }
  const int n = c.size();
  const int tag = coll_tag();
  const std::size_t bytes = count * datatype_size(d);
  const coll::ScanAlgo algo = coll::select_scan(node_.cfg, bytes, n);
  CollScope span(node_, coll::telem_id(algo, /*exclusive=*/false), bytes);
  if (algo == coll::ScanAlgo::kBinomial) {
    coll::scan_binomial(*this, sendb, recvb, count, d, op, c, tag);
  } else {
    coll::scan_linear(*this, sendb, recvb, count, d, op, c, tag);
  }
}

void Mpi::exscan(const void* sendb, void* recvb, std::size_t count, Datatype d, Op op,
                 const Comm& c) {
  SP_MPI_CALL(kExscan);
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) {
    rec_coll(rec_, task_id_, optrace::OpKind::kExscan, c, 0, d, op, count);
  }
  const int n = c.size();
  const int tag = coll_tag();
  const std::size_t bytes = count * datatype_size(d);
  const coll::ScanAlgo algo = coll::select_scan(node_.cfg, bytes, n);
  CollScope span(node_, coll::telem_id(algo, /*exclusive=*/true), bytes);
  if (algo == coll::ScanAlgo::kBinomial) {
    coll::exscan_binomial(*this, sendb, recvb, count, d, op, c, tag);
  } else {
    coll::exscan_linear(*this, sendb, recvb, count, d, op, c, tag);
  }
}

void Mpi::gatherv(const void* sendb, std::size_t scount, void* recvb,
                  const std::size_t* rcounts, const std::size_t* displs, Datatype d, int root,
                  const Comm& c) {
  SP_MPI_CALL(kGatherv);
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) {
    // Per-rank receive counts are only meaningful (or even valid to read) at
    // the root; non-roots record their send count alone.
    std::vector<std::int64_t> v;
    if (c.rank() == root) {
      for (int r = 0; r < c.size(); ++r) {
        v.push_back(static_cast<std::int64_t>(rcounts[static_cast<std::size_t>(r)]));
      }
    }
    rec_coll(rec_, task_id_, optrace::OpKind::kGatherv, c, root, d, Op::kSum, scount,
             std::move(v));
  }
  const std::size_t esz = datatype_size(d);
  const int tag = coll_tag();
  if (c.rank() == root) {
    auto* out = static_cast<std::byte*>(recvb);
    for (int r = 0; r < c.size(); ++r) {
      const auto ri = static_cast<std::size_t>(r);
      if (r == root) {
        if (rcounts[ri] > 0) std::memcpy(out + displs[ri] * esz, sendb, rcounts[ri] * esz);
      } else {
        recv(out + displs[ri] * esz, rcounts[ri], d, r, tag, c);
      }
    }
  } else {
    send(sendb, scount, d, root, tag, c);
  }
}

void Mpi::scatterv(const void* sendb, const std::size_t* scounts, const std::size_t* displs,
                   void* recvb, std::size_t rcount, Datatype d, int root, const Comm& c) {
  SP_MPI_CALL(kScatterv);
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) {
    std::vector<std::int64_t> v;
    if (c.rank() == root) {
      for (int r = 0; r < c.size(); ++r) {
        v.push_back(static_cast<std::int64_t>(scounts[static_cast<std::size_t>(r)]));
      }
    }
    rec_coll(rec_, task_id_, optrace::OpKind::kScatterv, c, root, d, Op::kSum, rcount,
             std::move(v));
  }
  const std::size_t esz = datatype_size(d);
  const int tag = coll_tag();
  if (c.rank() == root) {
    const auto* in = static_cast<const std::byte*>(sendb);
    for (int r = 0; r < c.size(); ++r) {
      const auto ri = static_cast<std::size_t>(r);
      if (r == root) {
        if (scounts[ri] > 0) std::memcpy(recvb, in + displs[ri] * esz, scounts[ri] * esz);
      } else {
        send(in + displs[ri] * esz, scounts[ri], d, r, tag, c);
      }
    }
  } else {
    recv(recvb, rcount, d, root, tag, c);
  }
}

void Mpi::reduce_scatter_block(const void* sendb, void* recvb, std::size_t count, Datatype d,
                               Op op, const Comm& c) {
  SP_MPI_CALL(kReduceScatter);
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) {
    rec_coll(rec_, task_id_, optrace::OpKind::kReduceScatterBlock, c, 0, d, op, count);
  }
  const int n = c.size();
  const int tag = coll_tag();
  const std::size_t total_bytes = count * static_cast<std::size_t>(n) * datatype_size(d);
  const coll::ReduceScatterAlgo algo = coll::select_reduce_scatter(node_.cfg, total_bytes, n);
  CollScope span(node_, coll::telem_id(algo), total_bytes);
  if (algo == coll::ReduceScatterAlgo::kRecursiveHalving) {
    coll::reduce_scatter_recursive_halving(*this, sendb, recvb, count, d, op, c, tag);
  } else {
    coll::reduce_scatter_via_reduce(*this, sendb, recvb, count, d, op, c, tag);
  }
}

// ---------------------------------------------------------------------------
// Communicator management
// ---------------------------------------------------------------------------

Comm Mpi::dup(const Comm& c) {
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) {
    optrace::Op op;
    op.kind = optrace::OpKind::kDup;
    op.comm = rec_->comm_index(task_id_, c.ctx());
    rec_->push(task_id_, op);
  }
  // Collective: every member allocates the same new context deterministically.
  barrier(c);
  const int ctx = next_ctx_++;
  if (rs.armed()) rec_->register_comm(task_id_, ctx);
  return Comm(ctx, c.tasks(), c.rank());
}

Comm Mpi::split(const Comm& c, int color, int key) {
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) {
    optrace::Op op;
    op.kind = optrace::OpKind::kSplit;
    op.comm = rec_->comm_index(task_id_, c.ctx());
    op.peer = key;
    op.tag = color;
    rec_->push(task_id_, op);
  }
  const int n = c.size();
  // Gather (color, key) from every member.
  std::vector<std::int32_t> mine{color, key};
  std::vector<std::int32_t> all(static_cast<std::size_t>(n) * 2);
  allgather(mine.data(), 2, all.data(), Datatype::kInt, c);

  // Distinct colors, sorted, determine context ids deterministically.
  std::vector<int> colors;
  for (int r = 0; r < n; ++r) colors.push_back(all[static_cast<std::size_t>(r) * 2]);
  std::vector<int> uniq = colors;
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());

  const auto color_idx = static_cast<int>(
      std::lower_bound(uniq.begin(), uniq.end(), color) - uniq.begin());
  const int ctx = next_ctx_ + color_idx;
  next_ctx_ += static_cast<int>(uniq.size());
  if (rs.armed()) rec_->register_comm(task_id_, ctx);

  // Members of my color, ordered by (key, rank).
  std::vector<std::pair<int, int>> members;  // (key, rank)
  for (int r = 0; r < n; ++r) {
    if (colors[static_cast<std::size_t>(r)] == color) {
      members.emplace_back(all[static_cast<std::size_t>(r) * 2 + 1], r);
    }
  }
  std::sort(members.begin(), members.end());
  std::vector<int> tasks;
  int my_new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    tasks.push_back(c.task_of(members[i].second));
    if (members[i].second == c.rank()) my_new_rank = static_cast<int>(i);
  }
  return Comm(ctx, std::move(tasks), my_new_rank);
}

// ---------------------------------------------------------------------------
// Environment
// ---------------------------------------------------------------------------

double Mpi::wtime() const { return sim::to_sec(node_.sim.now()); }

void Mpi::compute(sim::TimeNs ns) {
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) {
    optrace::Op op;
    op.kind = optrace::OpKind::kCompute;
    op.count = ns;
    rec_->push(task_id_, op);
  }
  node_.app_charge(ns);
}

void Mpi::set_interrupt_mode(bool on) {
  RecordScope rs(rec_, rec_depth_);
  if (rs.armed()) {
    optrace::Op op;
    op.kind = optrace::OpKind::kInterrupt;
    op.count = on ? 1 : 0;
    rec_->push(task_id_, op);
  }
  node_.app_charge(node_.cfg.mpi_call_overhead_ns / 2);
  // The interrupt switch lives in the HAL; reach it through the runtime.
  assert(interrupt_hook_ && "interrupt hook not wired by the Machine");
  interrupt_hook_(on);
}

}  // namespace sp::mpi
