// sp::mpi::coll — the collective algorithm engine (DESIGN.md §12).
//
// Each collective primitive has several point-to-point decompositions with
// different latency/bandwidth trade-offs; a per-(primitive, message-size,
// comm-size) selection table picks one at call time. Cutover thresholds and
// per-primitive pins live in MachineConfig (spsim --coll-algo overrides
// them), so benchmarks and the conformance matrix can force any algorithm.
//
// Every algorithm here preserves MPI reduction semantics exactly: operands
// combine in communicator rank order (v0 op v1 op ... op v_{n-1}, regrouped
// only by associativity), so non-commutative operators such as Op::kMat2x2
// give bit-identical results no matter which algorithm the table selects.
// tests/mpi_collectives_test.cpp holds the golden-model conformance matrix
// that every algorithm must pass before auto-selection may choose it.
//
// Tag discipline: the public Mpi collective allocates exactly ONE collective
// tag per call (uniformly, even for size-1 communicators and zero counts —
// see the tag-desync audit in the tests) and multi-phase algorithms derive
// per-phase tags via phase_tag(), so ranks living in different-sized split()
// sub-communicators never let their collective sequence numbers drift apart.
#pragma once

#include <cstddef>
#include <string>

#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"
#include "sim/config.hpp"
#include "sim/telemetry.hpp"

namespace sp::mpi {
class Mpi;
}  // namespace sp::mpi

namespace sp::mpi::coll {

// Per-primitive algorithm ids. Value 0 is always "auto" (resolve from the
// MachineConfig cutover table); the MachineConfig pins store these as ints.
// kNicOffload = 4 across primitives: run the operation on the adapter via
// the channel's nic_* hook; the Mpi layer falls back to the host auto table
// (select_*_host) when the channel declines (no NIC, or message too large).
// kInNetwork = 5 across primitives: run the operation in the switch
// combining tables (net::CombiningEngine, DESIGN.md §16); the Mpi layer
// likewise falls back to select_*_host when the engine declines (message
// above in_network_coll_max_bytes, or comm too small to profit).
enum class BcastAlgo : int {
  kAuto = 0, kBinomial, kPipelined, kScatterAllgather, kNicOffload, kInNetwork
};
enum class AllreduceAlgo : int {
  kAuto = 0, kReduceBcast, kRecursiveDoubling, kRabenseifner, kNicOffload, kInNetwork
};
enum class AlltoallAlgo : int { kAuto = 0, kPairwise, kBruck };
enum class ReduceScatterAlgo : int { kAuto = 0, kReduceScatter, kRecursiveHalving };
enum class ScanAlgo : int { kAuto = 0, kLinear, kBinomial };
/// Barrier pins (cfg.coll_barrier_algo): host dissemination is the only host
/// algorithm, so the enum exists mainly to name the NIC pin.
enum class BarrierAlgo : int {
  kAuto = 0, kDissemination = 1, kNicOffload = 4, kInNetwork = 5
};

/// Whether in_network_topology_mask enables switch combining on the active
/// topology (auto-selection gate; explicit pins bypass it).
[[nodiscard]] bool in_network_enabled(const sim::MachineConfig& cfg) noexcept;

// --- selection table (resolves kAuto; pins pass through) -------------------
[[nodiscard]] BcastAlgo select_bcast(const sim::MachineConfig& cfg, std::size_t bytes, int n);
[[nodiscard]] AllreduceAlgo select_allreduce(const sim::MachineConfig& cfg, std::size_t bytes,
                                             int n);
[[nodiscard]] AlltoallAlgo select_alltoall(const sim::MachineConfig& cfg,
                                           std::size_t block_bytes, int n);
[[nodiscard]] ReduceScatterAlgo select_reduce_scatter(const sim::MachineConfig& cfg,
                                                      std::size_t total_bytes, int n);
[[nodiscard]] ScanAlgo select_scan(const sim::MachineConfig& cfg, std::size_t bytes, int n);

// Host-only auto resolution, ignoring pins. The Mpi layer uses these as the
// fallback when a pinned kNicOffload is declined by the channel.
[[nodiscard]] BcastAlgo select_bcast_host(const sim::MachineConfig& cfg, std::size_t bytes,
                                          int n);
[[nodiscard]] AllreduceAlgo select_allreduce_host(const sim::MachineConfig& cfg,
                                                  std::size_t bytes, int n);

// Telemetry ids (sim::CollAlgo) for the resolved choices.
[[nodiscard]] sim::CollAlgo telem_id(BcastAlgo a) noexcept;
[[nodiscard]] sim::CollAlgo telem_id(AllreduceAlgo a) noexcept;
[[nodiscard]] sim::CollAlgo telem_id(AlltoallAlgo a) noexcept;
[[nodiscard]] sim::CollAlgo telem_id(ReduceScatterAlgo a) noexcept;
[[nodiscard]] sim::CollAlgo telem_id(ScanAlgo a, bool exclusive) noexcept;

/// Apply a `--coll-algo` spec to the config pins. The spec is a comma list of
/// `primitive=algorithm` entries, e.g.
/// "bcast=pipelined,allreduce=rabenseifner,alltoall=bruck,scan=binomial";
/// `primitive=auto` restores size-based selection and `all=auto` clears every
/// pin. Returns false (and fills *err when non-null) on an unknown name.
bool apply_algo_spec(sim::MachineConfig& cfg, const std::string& spec, std::string* err);

/// Derive the tag of phase `phase` of a multi-phase algorithm from the single
/// collective tag the public call allocated. Phases stay inside the reserved
/// collective tag space and never collide with the per-call sequence tags.
[[nodiscard]] constexpr int phase_tag(int tag, int phase) noexcept {
  return tag + 4096 * phase;
}

/// Element-group size an operator reduces over: Op::kMat2x2 combines disjoint
/// groups of 4 elements, so vector splits must align to it (all others are
/// element-wise).
[[nodiscard]] constexpr std::size_t op_granule(Op op) noexcept {
  return op == Op::kMat2x2 ? 4 : 1;
}

// --- algorithm implementations ---------------------------------------------
// All take the communicator-rank-space arguments of their public counterpart
// plus the collective tag; multi-phase algorithms consume phase_tag(tag, p).

void bcast_binomial(Mpi& mpi, void* buf, std::size_t count, Datatype d, int root,
                    const Comm& c, int tag);
void bcast_pipelined(Mpi& mpi, void* buf, std::size_t count, Datatype d, int root,
                     const Comm& c, int tag, std::size_t segment_bytes);
void bcast_scatter_allgather(Mpi& mpi, void* buf, std::size_t count, Datatype d, int root,
                             const Comm& c, int tag);

/// Rank-ordered binomial reduction tree rooted at rank 0; when root != 0 the
/// result takes one extra hop 0 -> root (phase 1). This keeps operand order
/// equal to communicator rank order for every root — the seed tree rotated
/// ranks around the root, which silently reordered non-commutative operands.
void reduce_binomial(Mpi& mpi, const void* sendb, void* recvb, std::size_t count, Datatype d,
                     Op op, int root, const Comm& c, int tag);

void allreduce_reduce_bcast(Mpi& mpi, const void* sendb, void* recvb, std::size_t count,
                            Datatype d, Op op, const Comm& c, int tag);
void allreduce_recursive_doubling(Mpi& mpi, const void* sendb, void* recvb, std::size_t count,
                                  Datatype d, Op op, const Comm& c, int tag);
void allreduce_rabenseifner(Mpi& mpi, const void* sendb, void* recvb, std::size_t count,
                            Datatype d, Op op, const Comm& c, int tag);

void alltoall_pairwise(Mpi& mpi, const void* sendb, std::size_t count, void* recvb, Datatype d,
                       const Comm& c, int tag);
void alltoall_bruck(Mpi& mpi, const void* sendb, std::size_t count, void* recvb, Datatype d,
                    const Comm& c, int tag);

void reduce_scatter_via_reduce(Mpi& mpi, const void* sendb, void* recvb, std::size_t count,
                               Datatype d, Op op, const Comm& c, int tag);
void reduce_scatter_recursive_halving(Mpi& mpi, const void* sendb, void* recvb,
                                      std::size_t count, Datatype d, Op op, const Comm& c,
                                      int tag);

void scan_linear(Mpi& mpi, const void* sendb, void* recvb, std::size_t count, Datatype d,
                 Op op, const Comm& c, int tag);
void scan_binomial(Mpi& mpi, const void* sendb, void* recvb, std::size_t count, Datatype d,
                   Op op, const Comm& c, int tag);
void exscan_linear(Mpi& mpi, const void* sendb, void* recvb, std::size_t count, Datatype d,
                   Op op, const Comm& c, int tag);
void exscan_binomial(Mpi& mpi, const void* sendb, void* recvb, std::size_t count, Datatype d,
                     Op op, const Comm& c, int tag);

}  // namespace sp::mpi::coll
