// MPL compatibility facade.
//
// MPL was IBM's pre-MPI message-passing interface on the SP (§1-2 of the
// paper: the native MPI was built by reusing MPL's infrastructure, and one of
// the paper's motivations was "to provide better reuse by making LAPI the
// common transport layer for other communication libraries"). This facade
// demonstrates exactly that: the classic MPL call set runs over the same
// MPCI channel — and therefore over either transport — with MPL's flavour of
// the API: explicit (source, type) addressing, DONTCARE wildcards, integer
// message ids for nonblocking operations, and mpc_* naming.
#pragma once

#include <cstddef>
#include <map>

#include "mpi/mpi.hpp"

namespace sp::mpl {

/// MPL's wildcard value for source and type.
inline constexpr int kDontCare = -1;

class Mpl {
 public:
  /// MPL rides on the same per-task messaging stack as MPI.
  explicit Mpl(mpi::Mpi& mpi) : mpi_(mpi) {}

  Mpl(const Mpl&) = delete;
  Mpl& operator=(const Mpl&) = delete;

  // --- environment ---
  /// mpc_environ: number of tasks and my task id.
  void environ(int* numtask, int* taskid) {
    *numtask = mpi_.world().size();
    *taskid = mpi_.world().rank();
  }

  // --- blocking point-to-point ---
  /// mpc_bsend: blocking send of `bytes` to `dest` with message `type`.
  void bsend(const void* buf, std::size_t bytes, int dest, int type) {
    mpi_.send(buf, bytes, mpi::Datatype::kByte, dest, type, mpi_.world());
  }

  /// mpc_brecv: blocking receive; source/type may be kDontCare; outputs the
  /// actual source/type/byte count.
  void brecv(void* buf, std::size_t cap, int* source, int* type, std::size_t* nbytes) {
    mpi::Status st;
    mpi_.recv(buf, cap, mpi::Datatype::kByte, source != nullptr ? *source : kDontCare,
              type != nullptr ? *type : kDontCare, mpi_.world(), &st);
    if (source != nullptr) *source = st.source;
    if (type != nullptr) *type = st.tag;
    if (nbytes != nullptr) *nbytes = st.len;
  }

  // --- nonblocking point-to-point (integer message ids) ---
  /// mpc_send: returns a message id to wait on.
  [[nodiscard]] int send(const void* buf, std::size_t bytes, int dest, int type) {
    const int id = next_id_++;
    pending_.emplace(id, mpi_.isend(buf, bytes, mpi::Datatype::kByte, dest, type,
                                    mpi_.world()));
    return id;
  }

  /// mpc_recv: returns a message id to wait on.
  [[nodiscard]] int recv(void* buf, std::size_t cap, int source, int type) {
    const int id = next_id_++;
    pending_.emplace(id, mpi_.irecv(buf, cap, mpi::Datatype::kByte, source, type,
                                    mpi_.world()));
    return id;
  }

  /// mpc_wait: blocks until message id `msgid` completes; outputs byte count.
  void wait(int msgid, std::size_t* nbytes) {
    auto it = pending_.find(msgid);
    if (it == pending_.end()) return;  // already completed via status()
    mpi::Status st;
    mpi_.wait(it->second, &st);
    if (nbytes != nullptr) *nbytes = st.len;
    pending_.erase(it);
  }

  /// mpc_status: nonblocking completion check (MPL returns <0 if incomplete).
  [[nodiscard]] bool status(int msgid) {
    auto it = pending_.find(msgid);
    if (it == pending_.end()) return true;
    if (!mpi_.test(it->second)) return false;
    pending_.erase(it);
    return true;
  }

  // --- collectives (MPL's task-group ops over the world group) ---
  /// mpc_sync: barrier.
  void sync() { mpi_.barrier(mpi_.world()); }

  /// mpc_bcast.
  void bcast(void* buf, std::size_t bytes, int root) {
    mpi_.bcast(buf, bytes, mpi::Datatype::kByte, root, mpi_.world());
  }

  /// mpc_combine: element-wise reduction to all tasks (MPL combines in place).
  void combine(const void* in, void* out, std::size_t count, mpi::Datatype d, mpi::Op op) {
    mpi_.allreduce(in, out, count, d, op, mpi_.world());
  }

  /// mpc_index: all-to-all exchange of equal-size blocks.
  void index(const void* in, void* out, std::size_t block_bytes) {
    mpi_.alltoall(in, block_bytes, out, mpi::Datatype::kByte, mpi_.world());
  }

 private:
  mpi::Mpi& mpi_;
  std::map<int, mpi::Request> pending_;
  int next_id_ = 1;
};

}  // namespace sp::mpl
