#include "mpi/machine.hpp"

#include <cstdio>
#include <exception>
#include <sstream>

namespace sp::mpi {

Machine::Machine(const sim::MachineConfig& cfg, int num_tasks, Backend backend)
    : cfg_(cfg), num_tasks_(num_tasks), backend_(backend) {
  // Must precede any event scheduling: the salt participates in heap order,
  // and a schedule controller asserts it is installed on an empty queue.
  sim_.set_tie_break_salt(cfg_.event_tie_break_salt);
  if (cfg_.sched_controller != nullptr) {
    sim_.set_schedule_controller(cfg_.sched_controller, cfg_.sched_window_ns);
  }
  if (cfg_.trace_enabled) trace_ = std::make_unique<sim::Trace>(cfg_.trace_max_events);
  if (cfg_.telemetry_enabled) {
    // Auto-size the ring from the node count so traced runs at scale keep
    // zero drops: per-node floor, explicit knob as the minimum, hard cap so a
    // 1024-node machine doesn't silently pin gigabytes of host memory. The
    // default per-node floor leaves 2-node machines at the legacy 4 MiB (the
    // pinned traced digests depend on ring capacity).
    constexpr std::size_t kRingCapBytes = std::size_t{128} * 1024 * 1024;
    std::size_t ring = cfg_.telemetry_ring_bytes;
    const std::size_t scaled =
        static_cast<std::size_t>(num_tasks_) * cfg_.telemetry_ring_bytes_per_node;
    if (scaled > ring) ring = scaled;
    if (ring > kRingCapBytes) ring = kRingCapBytes;
    telemetry_ = std::make_unique<sim::Telemetry>(num_tasks_, ring);
  }
  fabric_ = std::make_unique<net::SwitchFabric>(sim_, cfg_, num_tasks_);
  fabric_->set_telemetry(telemetry_.get());
  lapi_group_ = std::make_unique<lapi::LapiGroup>(num_tasks_);

  for (int t = 0; t < num_tasks_; ++t) {
    auto n = std::make_unique<Node>();
    n->runtime = std::make_unique<sim::NodeRuntime>(sim_, cfg_, t);
    n->runtime->trace = trace_.get();
    n->runtime->telemetry = telemetry_.get();
    n->hal = std::make_unique<hal::Hal>(*n->runtime, *fabric_);
    // Both transports always exist (the real SP ran them side by side); the
    // backend selects which one MPCI uses, and only the native stack enables
    // the interrupt-handler hysteresis the paper criticises.
    n->pipes = std::make_unique<pipes::Pipes>(*n->runtime, *n->hal);
    n->lapi = std::make_unique<lapi::Lapi>(*n->runtime, *n->hal, *lapi_group_, t);
    n->hal->set_hysteresis_enabled(backend_ == Backend::kNativePipes);

    switch (backend_) {
      case Backend::kNativePipes:
        n->channel = std::make_unique<mpci::PipesChannel>(*n->runtime, *n->pipes, t, num_tasks_);
        break;
      case Backend::kLapiBase:
        n->channel = std::make_unique<mpci::LapiChannel>(*n->runtime, *n->lapi,
                                                         mpci::LapiVariant::kBase, t, num_tasks_);
        break;
      case Backend::kLapiCounters:
        n->channel = std::make_unique<mpci::LapiChannel>(
            *n->runtime, *n->lapi, mpci::LapiVariant::kCounters, t, num_tasks_);
        break;
      case Backend::kLapiEnhanced:
        n->channel = std::make_unique<mpci::LapiChannel>(
            *n->runtime, *n->lapi, mpci::LapiVariant::kEnhanced, t, num_tasks_);
        break;
      case Backend::kRdma:
        n->rdma = std::make_unique<hal::RdmaNic>(*n->runtime, *n->hal);
        n->channel = std::make_unique<mpci::RdmaChannel>(*n->runtime, *n->rdma, t, num_tasks_);
        break;
    }
    n->mpi = std::make_unique<Mpi>(*n->runtime, *n->channel, t, num_tasks_);
    hal::Hal* hal_ptr = n->hal.get();
    n->mpi->set_interrupt_hook([hal_ptr](bool on) { hal_ptr->set_interrupt_mode(on); });
    // Every backend gets the switch combining engine: in-network collectives
    // are a property of the interconnect, not of one adapter type.
    n->mpi->set_combining(&fabric_->combining());
    nodes_.push_back(std::move(n));
  }
}

Machine::~Machine() = default;

void Machine::run_threads(const std::function<void(int)>& body) {
  std::vector<std::unique_ptr<sim::RankThread>> threads;
  threads.reserve(static_cast<std::size_t>(num_tasks_));
  for (int t = 0; t < num_tasks_; ++t) {
    sim::NodeRuntime* nrt = nodes_[static_cast<std::size_t>(t)]->runtime.get();
    threads.push_back(std::make_unique<sim::RankThread>(sim_, t, [&body, nrt, t] {
      SP_TELEM(*nrt, sim::Ev::kRankStart, static_cast<std::uint64_t>(t));
      body(t);
      SP_TELEM(*nrt, sim::Ev::kRankFinish, static_cast<std::uint64_t>(t));
    }));
    nodes_[static_cast<std::size_t>(t)]->runtime->thread = threads.back().get();
    sim::RankThread* rt = threads.back().get();
    sim_.after(0, sim::sched_node_key(t), [rt] { rt->resume_from_sim(); });
  }

  std::exception_ptr fatal;
  try {
    sim_.run();
  } catch (...) {
    fatal = std::current_exception();
  }
  elapsed_ = sim_.now();

  // Collect per-thread errors before tearing threads down.
  std::exception_ptr thread_error;
  bool all_finished = true;
  sim::TimeNs last_finish = 0;
  for (auto& th : threads) {
    if (!th->finished()) all_finished = false;
    if (th->finished() && th->finished_at() > last_finish) last_finish = th->finished_at();
    if (!thread_error && th->error()) thread_error = th->error();
  }
  // Elapsed time is when the *program* ended, not when the queue drained:
  // housekeeping timers (delayed-ack flushes, retransmit checks) keep firing
  // as no-ops after the last rank returns and would otherwise quantize the
  // measurement to timer-period multiples.
  if (all_finished && !fatal) elapsed_ = last_finish;
  for (auto& th : threads) {
    nodes_[static_cast<std::size_t>(th->id())]->runtime->thread = nullptr;
  }
  threads.clear();  // aborts any still-blocked threads

  if (fatal) std::rethrow_exception(fatal);
  if (thread_error) std::rethrow_exception(thread_error);
  if (!all_finished) {
    std::ostringstream os;
    os << "simulation deadlock: event queue drained with rank thread(s) still blocked at t="
       << sim::to_us(elapsed_) << "us";
    throw sim::DeadlockError(os.str());
  }
}

Machine::Stats Machine::stats() const {
  Stats s;
  for (const auto& n : nodes_) {
    s.packets_sent += n->hal->packets_sent();
    s.packets_received += n->hal->packets_received();
    s.interrupts += n->hal->interrupts_taken();
    s.eager_sends += n->channel->eager_sends();
    s.rendezvous_sends += n->channel->rendezvous_sends();
    s.early_arrivals += n->channel->early_arrivals();
    s.ea_fallbacks += n->channel->ea_fallbacks();
    s.ea_nacks += n->channel->ea_nacks();
    if (n->rdma) {
      s.rdma_writes += n->rdma->writes();
      s.rdma_reads += n->rdma->reads();
      s.nic_collectives += n->rdma->nic_colls();
      s.rdma_retransmits += n->rdma->retransmits();
      s.rdma_acks += n->rdma->acks_sent();
      s.rdma_duplicate_deliveries += n->rdma->duplicate_deliveries();
      s.rdma_reacks_coalesced += n->rdma->reacks_coalesced();
    }
    s.lapi_messages += n->lapi->messages_sent();
    s.lapi_retransmits += n->lapi->retransmits();
    s.lapi_duplicate_deliveries += n->lapi->duplicate_deliveries();
    s.lapi_acks += n->lapi->acks_sent();
    s.lapi_reacks_coalesced += n->lapi->reacks_coalesced();
    s.pipes_retransmits += n->pipes->retransmits();
    s.pipes_duplicate_deliveries += n->pipes->duplicate_deliveries();
    s.pipes_acks += n->pipes->acks_sent();
    s.pipes_reacks_coalesced += n->pipes->reacks_coalesced();
    s.completion_thread_dispatches += n->lapi->completion_thread_dispatches();
    s.completion_inline_runs += n->lapi->completion_inline_runs();
  }
  for (const auto& n : nodes_) {
    s.hal_staged_bytes += n->hal->staged_bytes();
  }
  const net::CombiningEngine& ce = fabric_->combining();
  s.innet_collectives = ce.ops();
  s.innet_combines = ce.combines();
  s.innet_replications = ce.replications();
  s.innet_dup_discards = ce.dup_discards();
  s.innet_retransmits = ce.retransmits();
  s.innet_table_peak = ce.table_peak();
  s.fabric_packets = fabric_->packets_delivered();
  s.fabric_bytes = fabric_->bytes_carried();
  s.fabric_dropped = fabric_->packets_dropped();
  s.fabric_duplicated = fabric_->packets_duplicated();
  s.sim_events = sim_.events_processed();
  const sim::EventQueue& q = sim_.queue();
  s.events_pushed = q.pushed();
  s.events_popped = q.popped();
  s.actions_inline = q.inline_actions();
  s.action_pool_hits = q.pool().pool_hits();
  s.action_pool_misses = q.pool().pool_misses();
  s.action_fallback_allocs = q.pool().fallback_allocs();
  s.frames_recycled = fabric_->arena().recycled();
  s.frames_fresh = fabric_->arena().fresh();
  return s;
}

Machine::Stats Machine::stats_delta(const Stats& later, const Stats& earlier) noexcept {
  Stats d;
  d.packets_sent = later.packets_sent - earlier.packets_sent;
  d.packets_received = later.packets_received - earlier.packets_received;
  d.interrupts = later.interrupts - earlier.interrupts;
  d.fabric_packets = later.fabric_packets - earlier.fabric_packets;
  d.fabric_bytes = later.fabric_bytes - earlier.fabric_bytes;
  d.fabric_dropped = later.fabric_dropped - earlier.fabric_dropped;
  d.fabric_duplicated = later.fabric_duplicated - earlier.fabric_duplicated;
  d.eager_sends = later.eager_sends - earlier.eager_sends;
  d.rendezvous_sends = later.rendezvous_sends - earlier.rendezvous_sends;
  d.early_arrivals = later.early_arrivals - earlier.early_arrivals;
  d.ea_fallbacks = later.ea_fallbacks - earlier.ea_fallbacks;
  d.ea_nacks = later.ea_nacks - earlier.ea_nacks;
  d.rdma_writes = later.rdma_writes - earlier.rdma_writes;
  d.rdma_reads = later.rdma_reads - earlier.rdma_reads;
  d.nic_collectives = later.nic_collectives - earlier.nic_collectives;
  d.innet_collectives = later.innet_collectives - earlier.innet_collectives;
  d.innet_combines = later.innet_combines - earlier.innet_combines;
  d.innet_replications = later.innet_replications - earlier.innet_replications;
  d.innet_dup_discards = later.innet_dup_discards - earlier.innet_dup_discards;
  d.innet_retransmits = later.innet_retransmits - earlier.innet_retransmits;
  d.innet_table_peak = later.innet_table_peak;  // a peak, not a counter
  d.rdma_retransmits = later.rdma_retransmits - earlier.rdma_retransmits;
  d.rdma_acks = later.rdma_acks - earlier.rdma_acks;
  d.rdma_duplicate_deliveries =
      later.rdma_duplicate_deliveries - earlier.rdma_duplicate_deliveries;
  d.rdma_reacks_coalesced = later.rdma_reacks_coalesced - earlier.rdma_reacks_coalesced;
  d.lapi_messages = later.lapi_messages - earlier.lapi_messages;
  d.lapi_retransmits = later.lapi_retransmits - earlier.lapi_retransmits;
  d.lapi_duplicate_deliveries =
      later.lapi_duplicate_deliveries - earlier.lapi_duplicate_deliveries;
  d.lapi_acks = later.lapi_acks - earlier.lapi_acks;
  d.lapi_reacks_coalesced = later.lapi_reacks_coalesced - earlier.lapi_reacks_coalesced;
  d.pipes_retransmits = later.pipes_retransmits - earlier.pipes_retransmits;
  d.pipes_duplicate_deliveries =
      later.pipes_duplicate_deliveries - earlier.pipes_duplicate_deliveries;
  d.pipes_acks = later.pipes_acks - earlier.pipes_acks;
  d.pipes_reacks_coalesced = later.pipes_reacks_coalesced - earlier.pipes_reacks_coalesced;
  d.completion_thread_dispatches =
      later.completion_thread_dispatches - earlier.completion_thread_dispatches;
  d.completion_inline_runs = later.completion_inline_runs - earlier.completion_inline_runs;
  d.sim_events = later.sim_events - earlier.sim_events;
  d.events_pushed = later.events_pushed - earlier.events_pushed;
  d.events_popped = later.events_popped - earlier.events_popped;
  d.actions_inline = later.actions_inline - earlier.actions_inline;
  d.action_pool_hits = later.action_pool_hits - earlier.action_pool_hits;
  d.action_pool_misses = later.action_pool_misses - earlier.action_pool_misses;
  d.action_fallback_allocs = later.action_fallback_allocs - earlier.action_fallback_allocs;
  d.frames_recycled = later.frames_recycled - earlier.frames_recycled;
  d.frames_fresh = later.frames_fresh - earlier.frames_fresh;
  d.hal_staged_bytes = later.hal_staged_bytes - earlier.hal_staged_bytes;
  return d;
}

void Machine::print_stats(std::FILE* out) const {
  const Stats s = stats();
  std::fprintf(out, "--- %s, %d tasks, t=%.1f us ---\n", backend_name(backend_), num_tasks_,
               sim::to_us(elapsed_));
  std::fprintf(out, "fabric: %lld packets, %lld bytes, %lld dropped, %lld duplicated\n",
               static_cast<long long>(s.fabric_packets), static_cast<long long>(s.fabric_bytes),
               static_cast<long long>(s.fabric_dropped),
               static_cast<long long>(s.fabric_duplicated));
  std::fprintf(out, "hal:    %lld sent, %lld received, %lld interrupts\n",
               static_cast<long long>(s.packets_sent),
               static_cast<long long>(s.packets_received), static_cast<long long>(s.interrupts));
  std::fprintf(out, "mpci:   %lld eager, %lld rendezvous, %lld early arrivals, "
               "%lld ea-fallbacks, %lld ea-nacks\n",
               static_cast<long long>(s.eager_sends),
               static_cast<long long>(s.rendezvous_sends),
               static_cast<long long>(s.early_arrivals),
               static_cast<long long>(s.ea_fallbacks), static_cast<long long>(s.ea_nacks));
  if (backend_ == Backend::kRdma) {
    std::fprintf(out, "rdma:   %lld writes, %lld reads, %lld nic-colls, %lld retx, "
                 "%lld acks, %lld dup-rcvd\n",
                 static_cast<long long>(s.rdma_writes), static_cast<long long>(s.rdma_reads),
                 static_cast<long long>(s.nic_collectives),
                 static_cast<long long>(s.rdma_retransmits),
                 static_cast<long long>(s.rdma_acks),
                 static_cast<long long>(s.rdma_duplicate_deliveries));
  }
  if (s.innet_collectives > 0) {
    std::fprintf(out, "innet:  %lld colls, %lld combines, %lld replications, "
                 "%lld dup-discards, %lld retx, %lld table-peak\n",
                 static_cast<long long>(s.innet_collectives),
                 static_cast<long long>(s.innet_combines),
                 static_cast<long long>(s.innet_replications),
                 static_cast<long long>(s.innet_dup_discards),
                 static_cast<long long>(s.innet_retransmits),
                 static_cast<long long>(s.innet_table_peak));
  }
  std::fprintf(out, "lapi:   %lld messages, %lld retx, %lld dup-rcvd, %lld acks "
               "(%lld re-acks coalesced); completions: %lld thread, %lld inline\n",
               static_cast<long long>(s.lapi_messages),
               static_cast<long long>(s.lapi_retransmits),
               static_cast<long long>(s.lapi_duplicate_deliveries),
               static_cast<long long>(s.lapi_acks),
               static_cast<long long>(s.lapi_reacks_coalesced),
               static_cast<long long>(s.completion_thread_dispatches),
               static_cast<long long>(s.completion_inline_runs));
  std::fprintf(out, "pipes:  %lld retx, %lld dup-rcvd, %lld acks (%lld re-acks coalesced); "
               "simulator: %llu events\n",
               static_cast<long long>(s.pipes_retransmits),
               static_cast<long long>(s.pipes_duplicate_deliveries),
               static_cast<long long>(s.pipes_acks),
               static_cast<long long>(s.pipes_reacks_coalesced),
               static_cast<unsigned long long>(s.sim_events));
  std::fprintf(out, "host:   %llu events pushed, %llu popped; actions: %llu inline, "
               "%llu pooled, %llu pool-miss, %llu fallback\n",
               static_cast<unsigned long long>(s.events_pushed),
               static_cast<unsigned long long>(s.events_popped),
               static_cast<unsigned long long>(s.actions_inline),
               static_cast<unsigned long long>(s.action_pool_hits),
               static_cast<unsigned long long>(s.action_pool_misses),
               static_cast<unsigned long long>(s.action_fallback_allocs));
  std::fprintf(out, "host:   frames: %llu recycled, %llu fresh; %lld bytes staged (un-modeled)\n",
               static_cast<unsigned long long>(s.frames_recycled),
               static_cast<unsigned long long>(s.frames_fresh),
               static_cast<long long>(s.hal_staged_bytes));
}

void Machine::run(const std::function<void(Mpi&)>& program) {
  run_threads([this, &program](int t) {
    nodes_[static_cast<std::size_t>(t)]->channel->on_thread_start();
    program(*nodes_[static_cast<std::size_t>(t)]->mpi);
  });
}

void Machine::run_lapi(const std::function<void(lapi::Lapi&)>& program) {
  run_threads([this, &program](int t) { program(*nodes_[static_cast<std::size_t>(t)]->lapi); });
}

}  // namespace sp::mpi
