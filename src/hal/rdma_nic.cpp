#include "hal/rdma_nic.hpp"

#include <bit>
#include <cassert>
#include <cstring>
#include <utility>

namespace sp::hal {

namespace {
/// Immediate header of a NIC collective message (serialized as the uhdr).
struct CollWire {
  std::uint32_t ctx = 0;
  std::uint32_t seq = 0;
  std::uint16_t from = 0;  ///< Sender's vrank.
  std::uint8_t phase = 0;  ///< 0 = reduce, 1 = release/broadcast.
  std::uint8_t pad_ = 0;
};
static_assert(sizeof(CollWire) == 12);

[[nodiscard]] std::uint64_t coll_key(std::uint32_t ctx, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(ctx) << 32) | seq;
}
}  // namespace

RdmaNic::RdmaNic(sim::NodeRuntime& node, Hal& hal) : node_(node), hal_(hal) {
  hal_.register_nic_protocol(kProtoRdma, [this](int src, std::span<const std::byte> bytes) {
    on_hal_packet(src, bytes);
  });
}

lapi::ReliableLink& RdmaNic::link(int peer) {
  auto it = links_.find(peer);
  if (it == links_.end()) {
    lapi::ReliableLink::Profile prof;
    prof.proto = kProtoRdma;
    prof.header_bytes = node_.cfg.rdma_header_bytes;
    prof.nic_context = true;
    it = links_.emplace(peer, std::make_unique<lapi::ReliableLink>(node_, hal_, peer, prof)).first;
  }
  return *it->second;
}

void RdmaNic::post_write(int dst, std::vector<std::byte> imm, const std::byte* data,
                         std::size_t len, std::function<void()> on_origin_done) {
  ++writes_;
  lapi::ReliableLink::Message m;
  m.meta.kind = static_cast<std::uint8_t>(RdmaKind::kWrite);
  m.meta.msg_id = next_msg_id_++;
  m.meta.origin = static_cast<std::uint32_t>(hal_.node());
  m.meta.aux = ++write_seq_out_[dst];
  m.uhdr = std::move(imm);
  m.data = data;
  m.len = len;
  m.on_origin_done = std::move(on_origin_done);
  link(dst).submit(std::move(m));
}

void RdmaNic::post_write_owned(int dst, std::vector<std::byte> imm, std::vector<std::byte> data,
                               std::function<void()> on_origin_done) {
  ++writes_;
  lapi::ReliableLink::Message m;
  m.meta.kind = static_cast<std::uint8_t>(RdmaKind::kWrite);
  m.meta.msg_id = next_msg_id_++;
  m.meta.origin = static_cast<std::uint32_t>(hal_.node());
  m.meta.aux = ++write_seq_out_[dst];
  m.uhdr = std::move(imm);
  m.owned = std::move(data);
  m.on_origin_done = std::move(on_origin_done);
  link(dst).submit(std::move(m));
}

lapi::Token RdmaNic::register_region(const std::byte* data, std::size_t len) {
  const lapi::Token t = next_region_token_++;
  regions_.emplace(t, Region{data, len});
  return t;
}

void RdmaNic::deregister_region(lapi::Token token) { regions_.erase(token); }

void RdmaNic::post_read(int src, lapi::Token token, std::byte* local, std::size_t len,
                        std::function<void()> on_done) {
  ++reads_;
  if (len == 0) {
    if (on_done) node_.sim.after(0, sim::sched_node_key(node_.node), std::move(on_done));
    return;
  }
  const std::uint32_t req_id = next_read_id_++;
  pending_reads_.emplace(req_id, PendingRead{local, len, 0, std::move(on_done)});
  lapi::ReliableLink::Message m;
  m.meta.kind = static_cast<std::uint8_t>(RdmaKind::kReadReq);
  m.meta.msg_id = next_msg_id_++;
  m.meta.origin = static_cast<std::uint32_t>(hal_.node());
  m.meta.org_cntr = req_id;
  m.meta.aux = token;
  m.meta.aux2 = len;
  link(src).submit(std::move(m));
}

void RdmaNic::on_hal_packet(int src, std::span<const std::byte> bytes) {
  assert(bytes.size() >= lapi::kPktHdrBytes);
  const lapi::PktHdr h = lapi::parse_hdr(bytes);

  if (h.kind == static_cast<std::uint8_t>(lapi::Kind::kAck)) {
    link(src).on_ack(h.pkt_seq);
    return;
  }
  if (!link(src).accept(h.pkt_seq)) return;  // duplicate

  const std::size_t uhdr_off = lapi::kPktHdrBytes;
  const bool first = (h.flags & lapi::kFlagFirst) != 0;
  const std::size_t uhdr_len = first ? h.uhdr_len : 0;
  const std::span<const std::byte> uhdr = bytes.subspan(uhdr_off, uhdr_len);
  const std::span<const std::byte> data = bytes.subspan(uhdr_off + uhdr_len, h.data_len);

  switch (static_cast<RdmaKind>(h.kind)) {
    case RdmaKind::kReadResp: {
      // Scatter straight to offset in the reader's destination buffer: the
      // defining zero-copy property of the RDMA-read rendezvous.
      auto it = pending_reads_.find(static_cast<std::uint32_t>(h.org_cntr));
      assert(it != pending_reads_.end() && "read response without a pending read");
      PendingRead& r = it->second;
      assert(h.offset + h.data_len <= r.len);
      if (h.data_len > 0) std::memcpy(r.local + h.offset, data.data(), h.data_len);
      r.received += h.data_len;
      if (r.received >= r.len) {
        auto done = std::move(r.on_done);
        pending_reads_.erase(it);
        if (done) done();
      }
      return;
    }
    case RdmaKind::kReadReq:
      handle_read_req(src, h);
      return;
    case RdmaKind::kWrite:
    case RdmaKind::kColl: {
      auto [it, fresh] = reassembly_.try_emplace(std::make_pair(src, h.msg_id));
      Reassembly& r = it->second;
      if (fresh) {
        r.kind = h.kind;
        r.total = h.total_len;
        r.order = h.aux;
        r.data.resize(h.total_len);
      }
      if (first) {
        r.have_first = true;
        r.uhdr.assign(uhdr.begin(), uhdr.end());
      }
      if (h.data_len > 0) {
        std::memcpy(r.data.data() + h.offset, data.data(), h.data_len);
        r.received += h.data_len;
      }
      if (r.have_first && r.received >= r.total) {
        Reassembly done = std::move(r);
        reassembly_.erase(it);
        dispatch_message(src, std::move(done));
      }
      return;
    }
  }
  assert(false && "unknown RDMA wire kind");
}

void RdmaNic::dispatch_message(int src, Reassembly&& m) {
  if (m.kind == static_cast<std::uint8_t>(RdmaKind::kWrite)) {
    dispatch_write_in_order(src, std::move(m));
    return;
  }
  // Collective messages cost one NIC-processor dispatch before they act.
  node_.sim.after(node_.cfg.rdma_nic_msg_ns, sim::sched_node_key(node_.node),
                  [this, uhdr = std::move(m.uhdr), data = std::move(m.data)]() mutable {
                    handle_coll(uhdr, std::move(data));
                  });
}

void RdmaNic::dispatch_write_in_order(int src, Reassembly&& m) {
  // RC-QP ordering: the multipath fabric can finish reassembling two writes
  // in the opposite of their post order. Deliver to the channel strictly in
  // post order per source so envelope matching stays non-overtaking without
  // any parking logic above.
  WriteOrder& w = write_order_in_[src];
  if (m.order != w.expected) {
    w.held.emplace(m.order, std::move(m));
    return;
  }
  ++w.expected;
  assert(write_handler_ && "RDMA write with no channel handler");
  write_handler_(src, m.uhdr, std::move(m.data));
  while (!w.held.empty() && w.held.begin()->first == w.expected) {
    Reassembly next = std::move(w.held.begin()->second);
    w.held.erase(w.held.begin());
    ++w.expected;
    write_handler_(src, next.uhdr, std::move(next.data));
  }
}

void RdmaNic::handle_read_req(int src, const lapi::PktHdr& h) {
  // Served entirely by the target adapter: fetch the pre-registered region
  // descriptor and stream it back. The target host never runs.
  node_.sim.after(node_.cfg.rdma_nic_msg_ns, sim::sched_node_key(node_.node),
                  [this, src, token = h.aux, req_id = h.org_cntr, len = h.aux2] {
    auto it = regions_.find(token);
    assert(it != regions_.end() && "RDMA read of an unregistered region");
    const Region& region = it->second;
    const std::size_t n = len < region.len ? static_cast<std::size_t>(len) : region.len;
    lapi::ReliableLink::Message m;
    m.meta.kind = static_cast<std::uint8_t>(RdmaKind::kReadResp);
    m.meta.msg_id = next_msg_id_++;
    m.meta.origin = static_cast<std::uint32_t>(hal_.node());
    m.meta.org_cntr = req_id;
    m.data = region.data;
    m.len = n;
    link(src).submit(std::move(m));
  });
}

void RdmaNic::send_coll(int dst_task, std::uint32_t ctx, std::uint32_t seq, std::uint8_t phase,
                        std::uint16_t from_vrank, const std::byte* data, std::size_t len) {
  CollWire w;
  w.ctx = ctx;
  w.seq = seq;
  w.from = from_vrank;
  w.phase = phase;
  std::vector<std::byte> uhdr(sizeof(CollWire));
  std::memcpy(uhdr.data(), &w, sizeof(CollWire));
  lapi::ReliableLink::Message m;
  m.meta.kind = static_cast<std::uint8_t>(RdmaKind::kColl);
  m.meta.msg_id = next_msg_id_++;
  m.meta.origin = static_cast<std::uint32_t>(hal_.node());
  m.uhdr = std::move(uhdr);
  // Owned copy: the user vector keeps mutating (combine / release overwrite)
  // while lazily-materialized packets may still be queued behind the window.
  if (len > 0) m.owned.assign(data, data + len);
  link(dst_task).submit(std::move(m));
}

void RdmaNic::handle_coll(std::span<const std::byte> uhdr, std::vector<std::byte>&& data) {
  assert(uhdr.size() == sizeof(CollWire));
  CollWire w;
  std::memcpy(&w, uhdr.data(), sizeof(CollWire));
  const std::uint64_t key = coll_key(w.ctx, w.seq);
  CollState& st = colls_[key];  // may create an unbound stash-only state
  st.stash[(static_cast<std::uint32_t>(w.phase) << 16) | w.from] = std::move(data);
  coll_progress(key);
}

void RdmaNic::coll_start(CollOp&& op) {
  const std::uint64_t key = coll_key(op.ctx, op.seq);
  assert(!op.reduce_phase || op.root == 0);
  CollState& st = colls_[key];
  st.op = std::move(op);
  st.bound = true;
  if (static_cast<int>(st.op.tasks.size()) <= 1) {
    auto done = std::move(st.op.on_done);
    ++nic_colls_;
    colls_.erase(key);
    if (done) done();
    return;
  }
  coll_progress(key);
}

void RdmaNic::coll_progress(std::uint64_t key) {
  auto it = colls_.find(key);
  if (it == colls_.end() || !it->second.bound) return;
  CollState& st = it->second;
  CollOp& op = st.op;
  const int n = static_cast<int>(op.tasks.size());
  const int v = (op.rank - op.root + n) % n;  // vrank; == rank when reduce_phase
  auto task_of_vrank = [&](int u) { return op.tasks[static_cast<std::size_t>((u + op.root) % n)]; };

  if (op.reduce_phase && !st.up_sent) {
    // Binomial reduce toward vrank 0: fold children in increasing-mask order
    // (exact rank order — acc covers [v, v+mask), the child [v+mask, v+2mask)).
    while (true) {
      const int mask = static_cast<int>(st.next_mask);
      if (mask >= n) {
        st.up_sent = true;  // v == 0: the full reduction is in op.buf
        break;
      }
      if ((v & mask) != 0) {
        send_coll(task_of_vrank(v - mask), op.ctx, op.seq, 0, static_cast<std::uint16_t>(v),
                  op.buf, op.len);
        st.up_sent = true;
        break;
      }
      const int child = v + mask;
      if (child < n) {
        auto s = st.stash.find(static_cast<std::uint32_t>(child));
        if (s == st.stash.end()) return;  // wait for this child's partial
        if (op.combine && op.len > 0) {
          assert(s->second.size() == op.len);
          op.combine(op.buf, s->second.data(), op.len);
        }
        st.stash.erase(s);
      }
      st.next_mask <<= 1;
    }
  }

  // Release / broadcast phase (binomial from vrank 0).
  if (v == 0) {
    if (op.reduce_phase && !st.up_sent) return;
    for (std::uint32_t k = std::bit_ceil(static_cast<std::uint32_t>(n)) >> 1; k >= 1; k >>= 1) {
      if (static_cast<int>(k) < n) {
        send_coll(task_of_vrank(static_cast<int>(k)), op.ctx, op.seq, 1, 0, op.buf, op.len);
      }
    }
  } else {
    // Parent in the release tree is v with its LOWEST set bit cleared: the
    // root seeds vranks 2^i, and a node that came in on bit m fans out to
    // v + m/2 ... v + 1 (first divergence from the highest-bit formula is
    // v = 3, whose parent is 2, not 1).
    const int m = v & -v;
    auto s = st.stash.find((1u << 16) | static_cast<std::uint32_t>(v - m));
    if (s == st.stash.end()) return;  // wait for the parent's release
    if (op.len > 0) {
      assert(s->second.size() == op.len);
      std::memcpy(op.buf, s->second.data(), op.len);
    }
    st.stash.erase(s);
    for (std::uint32_t k = static_cast<std::uint32_t>(m) >> 1; k >= 1; k >>= 1) {
      if (v + static_cast<int>(k) < n) {
        send_coll(task_of_vrank(v + static_cast<int>(k)), op.ctx, op.seq, 1,
                  static_cast<std::uint16_t>(v), op.buf, op.len);
      }
    }
  }

  assert(st.stash.empty() && "collective completed with unconsumed messages");
  auto done = std::move(op.on_done);
  ++nic_colls_;
  colls_.erase(it);
  if (done) done();
}

std::int64_t RdmaNic::retransmits() const noexcept {
  std::int64_t total = 0;
  for (const auto& [peer, l] : links_) total += l->retransmits();
  return total;
}

std::int64_t RdmaNic::acks_sent() const noexcept {
  std::int64_t total = 0;
  for (const auto& [peer, l] : links_) total += l->acks_sent();
  return total;
}

std::int64_t RdmaNic::duplicate_deliveries() const noexcept {
  std::int64_t total = 0;
  for (const auto& [peer, l] : links_) total += l->duplicates();
  return total;
}

std::int64_t RdmaNic::reacks_coalesced() const noexcept {
  std::int64_t total = 0;
  for (const auto& [peer, l] : links_) total += l->reacks_coalesced();
  return total;
}

std::int64_t RdmaNic::link_packets_sent() const noexcept {
  std::int64_t total = 0;
  for (const auto& [peer, l] : links_) total += l->packets_sent();
  return total;
}

}  // namespace sp::hal
