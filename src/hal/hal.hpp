// HAL: the packet layer over the switch adapter (Fig. 1 of the paper).
//
// Upper layers (Pipes, LAPI) hand the HAL one packet's worth of serialized
// bytes; the HAL charges the host-side handshake with the adapter microcode,
// models the adapter DMA engine (per-packet setup + per-byte transfer, one
// packet at a time), and injects the frame into the switch fabric. Inbound,
// frames are DMAed from the adapter into pinned HAL receive buffers and
// delivered to the registered protocol either immediately (polling mode — the
// paper's experiments poll inside blocking calls) or through the interrupt
// controller (interrupt mode), which reproduces the native stack's interrupt
// hysteresis scheme.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "net/switch_fabric.hpp"
#include "sim/node_runtime.hpp"

namespace sp::hal {

using ProtoId = std::uint8_t;
inline constexpr ProtoId kProtoPipes = 1;
inline constexpr ProtoId kProtoLapi = 2;
inline constexpr ProtoId kProtoRdma = 3;
inline constexpr int kMaxProto = 4;

class Hal {
 public:
  /// Upcall delivering one received packet's upper-layer bytes. The span
  /// views the pinned HAL receive buffer and is valid only for the duration
  /// of the call — protocols must copy what they keep (and charge that copy,
  /// which is exactly the paper's per-stack copy accounting).
  using RecvFn = std::function<void(int src, std::span<const std::byte>)>;

  Hal(sim::NodeRuntime& node, net::SwitchFabric& fabric);

  Hal(const Hal&) = delete;
  Hal& operator=(const Hal&) = delete;

  /// Register the receive upcall for protocol `proto`.
  void register_protocol(ProtoId proto, RecvFn fn);

  /// Register a NIC-resident protocol (DESIGN.md §14). Inbound frames for a
  /// NIC protocol never touch the host: the adapter DMA uses the pre-posted
  /// descriptor cost (rdma_nic_pkt_ns) instead of the host-driven setup, the
  /// per-packet host handshake and the interrupt path are both skipped, and
  /// the upcall runs in adapter context at the moment the DMA lands.
  void register_nic_protocol(ProtoId proto, RecvFn fn);

  /// NIC-originated variant of send_packet: descriptors are pre-posted by the
  /// adapter engine, so no host CPU is charged and the per-packet DMA setup
  /// is rdma_nic_pkt_ns instead of adapter_packet_setup_ns. Shares the send
  /// DMA engine, the pinned-buffer pool, and wait_send_space with the host
  /// path.
  [[nodiscard]] bool send_packet_nic(int dst, ProtoId proto, std::span<const std::byte> payload,
                                     std::size_t modeled_payload_bytes = 0);

  /// Queue one packet for transmission. Returns false if all pinned HAL send
  /// buffers are in use (caller must retry from its on_send_space callback).
  /// `payload` is the upper layer's serialized header + data for ONE packet;
  /// it must fit the MTU plus the upper layer's own header allowance.
  /// `modeled_payload_bytes` is the size time is charged for (0 = real size);
  /// see net::Packet::modeled_bytes.
  [[nodiscard]] bool send_packet(int dst, ProtoId proto, std::span<const std::byte> payload,
                                 std::size_t modeled_payload_bytes = 0);

  /// Register a ONE-SHOT callback invoked (in event context) the next time a
  /// send buffer frees up. The waiter list is swapped and drained before the
  /// callbacks run, so a waiter that is still blocked simply re-registers and
  /// takes its turn at the *next* freed buffer — later registrants cannot be
  /// starved by an earlier one re-grabbing every buffer.
  void wait_send_space(std::function<void()> fn) {
    send_space_waiters_.push_back(std::move(fn));
  }

  /// Switch between polling delivery and interrupt delivery.
  void set_interrupt_mode(bool on) noexcept { interrupt_mode_ = on; }
  [[nodiscard]] bool interrupt_mode() const noexcept { return interrupt_mode_; }

  /// Enable the native stack's interrupt hysteresis (LAPI leaves it off).
  void set_hysteresis_enabled(bool on) noexcept { hysteresis_enabled_ = on; }

  [[nodiscard]] int node() const noexcept { return node_.node; }
  [[nodiscard]] sim::NodeRuntime& runtime() noexcept { return node_; }

  /// The machine-wide frame recycler (owned by the fabric). Upper layers may
  /// use it for buffers with packet-like lifetimes (e.g. retransmit stores).
  [[nodiscard]] net::FrameArena& arena() noexcept { return fabric_.arena(); }

  // --- statistics ---
  [[nodiscard]] std::int64_t packets_sent() const noexcept { return packets_sent_; }
  [[nodiscard]] std::int64_t packets_received() const noexcept { return packets_received_; }
  [[nodiscard]] std::int64_t interrupts_taken() const noexcept { return interrupts_taken_; }
  [[nodiscard]] int send_buffers_in_use() const noexcept { return send_buffers_in_use_; }
  /// Host bytes memcpy'd staging payloads into send frames (an un-modeled
  /// host-side copy; the modeled copies are charged by the upper layers).
  [[nodiscard]] std::int64_t staged_bytes() const noexcept { return staged_bytes_; }

 private:
  void on_frame_from_fabric(net::Packet&& pkt);
  void deliver_to_protocol(net::Packet&& pkt);
  void enter_interrupt();
  void interrupt_drain_and_maybe_wait(sim::TimeNs window);

  sim::NodeRuntime& node_;
  net::SwitchFabric& fabric_;

  void notify_send_space();

  [[nodiscard]] bool send_packet_impl(int dst, ProtoId proto, std::span<const std::byte> payload,
                                      std::size_t modeled_payload_bytes, bool nic_context);

  std::vector<RecvFn> protocols_;
  std::array<bool, kMaxProto> nic_proto_{};
  std::vector<std::function<void()>> send_space_waiters_;

  // Send side: adapter DMA engine availability and pinned-buffer pool.
  sim::TimeNs send_dma_free_at_ = 0;
  int send_buffers_in_use_ = 0;

  // Receive side.
  sim::TimeNs recv_dma_free_at_ = 0;
  std::deque<net::Packet> recv_pending_;  // arrived, not yet serviced (interrupt mode)
  bool interrupt_mode_ = false;
  bool hysteresis_enabled_ = false;
  bool interrupt_active_ = false;
  sim::TimeNs irq_entered_at_ = 0;  // start of the current interrupt episode

  std::int64_t packets_sent_ = 0;
  std::int64_t packets_received_ = 0;
  std::int64_t interrupts_taken_ = 0;
  std::int64_t staged_bytes_ = 0;
};

}  // namespace sp::hal
