#include "hal/hal.hpp"

#include <cassert>
#include <cstdio>
#include <string>
#include <cmath>
#include <cstring>
#include <utility>

namespace sp::hal {

namespace {
[[nodiscard]] sim::TimeNs dma_time(const sim::MachineConfig& cfg, std::size_t bytes,
                                   bool nic_context = false) {
  // NIC-resident protocols run on pre-posted descriptors: the per-packet
  // setup collapses to the cut-through cost; the per-byte engine is shared.
  const sim::TimeNs setup = nic_context ? cfg.rdma_nic_pkt_ns : cfg.adapter_packet_setup_ns;
  return setup +
         static_cast<sim::TimeNs>(std::llround(cfg.adapter_ns_per_byte * static_cast<double>(bytes)));
}
}  // namespace

Hal::Hal(sim::NodeRuntime& node, net::SwitchFabric& fabric)
    : node_(node), fabric_(fabric), protocols_(kMaxProto) {
  fabric_.attach(node_.node, [this](net::Packet&& pkt) { on_frame_from_fabric(std::move(pkt)); });
}

void Hal::register_protocol(ProtoId proto, RecvFn fn) {
  assert(proto < kMaxProto);
  protocols_[proto] = std::move(fn);
}

void Hal::register_nic_protocol(ProtoId proto, RecvFn fn) {
  assert(proto < kMaxProto);
  protocols_[proto] = std::move(fn);
  nic_proto_[proto] = true;
}

bool Hal::send_packet(int dst, ProtoId proto, std::span<const std::byte> payload,
                      std::size_t modeled_payload_bytes) {
  return send_packet_impl(dst, proto, payload, modeled_payload_bytes, /*nic_context=*/false);
}

bool Hal::send_packet_nic(int dst, ProtoId proto, std::span<const std::byte> payload,
                          std::size_t modeled_payload_bytes) {
  return send_packet_impl(dst, proto, payload, modeled_payload_bytes, /*nic_context=*/true);
}

bool Hal::send_packet_impl(int dst, ProtoId proto, std::span<const std::byte> payload,
                           std::size_t modeled_payload_bytes, bool nic_context) {
  assert(payload.size() <= node_.cfg.packet_mtu + 512 && "packet exceeds MTU allowance");
  if (send_buffers_in_use_ >= node_.cfg.hal_send_buffers) return false;
  ++send_buffers_in_use_;
  ++packets_sent_;
  node_.trace_event("hal.send", [&] {
    char b[64];
    std::snprintf(b, sizeof b, "dst=%d proto=%d bytes=%zu", dst, int(proto), payload.size());
    return std::string(b);
  });

  // Host-side handshake with the adapter microcode. NIC-originated packets
  // skip it: the adapter engine works from pre-posted descriptors.
  const sim::TimeNs cpu_done =
      nic_context ? node_.sim.now() : node_.cpu.charge(node_.sim, node_.cfg.hal_per_packet_cpu_ns);

  // Build the wire frame: HAL header (modelled as cfg.hal_header_bytes on the
  // wire; carries the protocol id) followed by the upper layer's bytes. The
  // payload is borrowed, so it must be staged into the frame before return.
  net::Packet pkt;
  pkt.src = node_.node;
  pkt.dst = dst;
  pkt.frame = fabric_.arena().acquire(node_.cfg.hal_header_bytes + payload.size());
  pkt.frame[0] = static_cast<std::byte>(proto);
  if (!payload.empty()) {
    std::memcpy(pkt.frame.data() + node_.cfg.hal_header_bytes, payload.data(), payload.size());
    staged_bytes_ += static_cast<std::int64_t>(payload.size());
  }
  if (modeled_payload_bytes != 0) {
    pkt.modeled_bytes = node_.cfg.hal_header_bytes + modeled_payload_bytes;
  }

  // Adapter DMA: one packet at a time, starting when both the descriptor is
  // posted (cpu_done) and the engine is free.
  const sim::TimeNs start = cpu_done > send_dma_free_at_ ? cpu_done : send_dma_free_at_;
  const sim::TimeNs injected_at = start + dma_time(node_.cfg, pkt.wire_bytes(), nic_context);
  send_dma_free_at_ = injected_at;

  SP_TELEM(node_, sim::Ev::kDmaStart, static_cast<std::uint64_t>(dst), pkt.wire_bytes());
  node_.sim.at(injected_at, [this, p = std::move(pkt)]() mutable {
    SP_TELEM(node_, sim::Ev::kDmaEnd, static_cast<std::uint64_t>(p.dst), p.wire_bytes());
    fabric_.inject(std::move(p));
    --send_buffers_in_use_;
    notify_send_space();
  });
  return true;
}

void Hal::notify_send_space() {
  if (send_space_waiters_.empty()) return;
  // Swap-and-drain: waiters registered *during* the callbacks (still-blocked
  // senders re-arming) land on the fresh list and wait for the next freed
  // buffer instead of being swept again in this round.
  auto waiters = std::move(send_space_waiters_);
  send_space_waiters_.clear();
  for (auto& fn : waiters) fn();
}

void Hal::on_frame_from_fabric(net::Packet&& pkt) {
  // DMA from adapter SRAM into a pinned HAL receive buffer. NIC-resident
  // protocols land in adapter SRAM rings on pre-posted descriptors (cheaper
  // setup) and are consumed by the adapter engine the moment the DMA ends —
  // no host handshake, no interrupt.
  assert(!pkt.frame.empty());
  const bool nic = nic_proto_[static_cast<ProtoId>(pkt.frame[0]) % kMaxProto];
  const sim::TimeNs now = node_.sim.now();
  const sim::TimeNs start = now > recv_dma_free_at_ ? now : recv_dma_free_at_;
  const sim::TimeNs host_visible = start + dma_time(node_.cfg, pkt.wire_bytes(), nic);
  recv_dma_free_at_ = host_visible;

  node_.sim.at(host_visible, sim::sched_node_key(node_.node),
               [this, nic, p = std::move(pkt)]() mutable {
    ++packets_received_;
    SP_TELEM(node_, sim::Ev::kRecvDma, static_cast<std::uint64_t>(p.src), p.wire_bytes());
    if (nic) {
      deliver_to_protocol(std::move(p));
    } else if (!interrupt_mode_) {
      // Polling mode: the paper's experiments poll inside blocking calls, so
      // dispatch proceeds as soon as the host CPU is free.
      node_.cpu.run(node_.sim, node_.cfg.hal_per_packet_cpu_ns,
                    [this, q = std::move(p)]() mutable { deliver_to_protocol(std::move(q)); });
    } else {
      recv_pending_.push_back(std::move(p));
      if (!interrupt_active_) {
        interrupt_active_ = true;
        node_.sim.after(node_.cfg.interrupt_latency_ns, sim::sched_node_key(node_.node),
                        [this] { enter_interrupt(); });
      }
    }
  });
}

void Hal::deliver_to_protocol(net::Packet&& pkt) {
  assert(!pkt.frame.empty());
  const auto proto = static_cast<ProtoId>(pkt.frame[0]);
  node_.trace_event("hal.deliver", [&] {
    char b[64];
    std::snprintf(b, sizeof b, "src=%d proto=%d route=%d", pkt.src, int(proto), pkt.route);
    return std::string(b);
  });
  assert(proto < kMaxProto && protocols_[proto] && "frame for unregistered protocol");
  SP_TELEM(node_, sim::Ev::kHalDeliver, static_cast<std::uint64_t>(pkt.src), proto);
  // Zero-copy dispatch: the protocol sees the bytes in place in the pinned
  // receive buffer; the frame is recycled once the upcall returns.
  const std::span<const std::byte> upper{
      pkt.frame.data() + node_.cfg.hal_header_bytes,
      pkt.frame.size() - node_.cfg.hal_header_bytes};
  protocols_[proto](pkt.src, upper);
  fabric_.arena().release(std::move(pkt.frame));
}

void Hal::enter_interrupt() {
  ++interrupts_taken_;
  irq_entered_at_ = node_.sim.now();
  SP_TELEM(node_, sim::Ev::kIrqEnter, recv_pending_.size());
  node_.trace_event("hal.interrupt", [&] {
    char b[48];
    std::snprintf(b, sizeof b, "pending=%zu", recv_pending_.size());
    return std::string(b);
  });
  // The handler (and its hysteresis busy-wait) occupies the CPU; completions
  // become visible to application threads only when it returns.
  node_.gate.close();
  node_.cpu.charge(node_.sim, node_.cfg.interrupt_service_ns);
  const sim::TimeNs window = hysteresis_enabled_ ? node_.cfg.interrupt_hysteresis_ns : 0;
  interrupt_drain_and_maybe_wait(window);
}

void Hal::interrupt_drain_and_maybe_wait(sim::TimeNs window) {
  // Service everything that has arrived.
  bool serviced_any = false;
  while (!recv_pending_.empty()) {
    serviced_any = true;
    net::Packet pkt = std::move(recv_pending_.front());
    recv_pending_.pop_front();
    node_.cpu.charge(node_.sim, node_.cfg.hal_per_packet_cpu_ns);
    deliver_to_protocol(std::move(pkt));
  }
  if (window > 0) {
    // Hysteresis: busy-wait `window` for more packets before returning. If
    // packets did arrive, service them and wait a grown window again.
    node_.sim.after(window, sim::sched_node_key(node_.node), [this, window, serviced_any] {
      if (!recv_pending_.empty()) {
        sim::TimeNs grown = static_cast<sim::TimeNs>(
            static_cast<double>(window) * node_.cfg.interrupt_hysteresis_growth);
        if (grown > node_.cfg.interrupt_hysteresis_max_ns) grown = node_.cfg.interrupt_hysteresis_max_ns;
        interrupt_drain_and_maybe_wait(grown);
      } else {
        (void)serviced_any;
        interrupt_active_ = false;
        const auto service_ns = static_cast<std::uint64_t>(node_.sim.now() - irq_entered_at_);
        SP_TELEM(node_, sim::Ev::kIrqExit, service_ns);
        SP_TELEM_HIST(node_, sim::Hist::kIrqServiceNs, service_ns);
        node_.gate.open();  // handler returns; completions become visible
      }
    });
  } else {
    interrupt_active_ = false;
    const auto service_ns = static_cast<std::uint64_t>(node_.sim.now() - irq_entered_at_);
    SP_TELEM(node_, sim::Ev::kIrqExit, service_ns);
    SP_TELEM_HIST(node_, sim::Hist::kIrqServiceNs, service_ns);
    node_.gate.open();
  }
}

}  // namespace sp::hal
