// RdmaNic: one-sided put/get DMA verbs plus NIC-resident collectives
// (DESIGN.md §14) — the adapter model behind sp::mpci::RdmaChannel.
//
// The NIC is the successor line of the paper's LAPI port: MPICH2-over-
// InfiniBand-style RDMA-write eager rings and RDMA-read rendezvous, and
// Quadrics/Myrinet-style collectives that run to completion on the adapter
// processor. Everything here executes in *NIC context*: sends go out via
// Hal::send_packet_nic (no host handshake), inbound frames arrive through the
// HAL's NIC-protocol bypass (no per-packet host charge, no interrupts), and
// the reliability engine is the same go-back-N ReliableLink the LAPI
// transport uses, parameterized with a Profile that drops every host CPU
// charge. Host time is charged only by the channel above (doorbells and
// completion-queue reaps).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "hal/hal.hpp"
#include "lapi/reliable_link.hpp"
#include "lapi/wire.hpp"
#include "sim/node_runtime.hpp"

namespace sp::hal {

/// Wire kinds carried in PktHdr::kind on kProtoRdma frames. Values start
/// well above lapi::Kind so a misrouted frame asserts instead of aliasing.
enum class RdmaKind : std::uint8_t {
  kWrite = 32,     ///< RDMA write with immediate (imm = channel envelope).
  kReadReq = 33,   ///< RDMA read request (single packet; token + length).
  kReadResp = 34,  ///< RDMA read response data (scattered straight to offset).
  kColl = 35,      ///< NIC-resident collective message (reduce / release).
};

class RdmaNic {
 public:
  /// Completed inbound RDMA write: immediate data plus the reassembled
  /// payload (moved to the handler — the ring slot is recycled immediately).
  using WriteHandler =
      std::function<void(int src, std::span<const std::byte> imm, std::vector<std::byte>&& data)>;
  /// Rank-order combine for the NIC allreduce: fold `from` (the higher-rank
  /// operand) into `into` (the lower-rank accumulator), element order exact.
  using Combine = std::function<void(std::byte* into, const std::byte* from, std::size_t len)>;

  /// One offloaded collective: a binomial reduce to vrank 0 (phase 0, when
  /// `reduce_phase`) followed by a binomial release/broadcast from vrank 0
  /// (phase 1). Barrier = both phases with len 0; allreduce = both phases
  /// with a combine; bcast = release phase only, vranked around `root`.
  struct CollOp {
    std::uint32_t ctx = 0;   ///< Communicator context id.
    std::uint32_t seq = 0;   ///< Per-context collective sequence number.
    int rank = 0;            ///< Caller's rank in the communicator.
    int root = 0;            ///< Must be 0 when reduce_phase (rank-order combine).
    std::vector<int> tasks;  ///< rank -> task id map (communicator group).
    std::byte* buf = nullptr;
    std::size_t len = 0;
    bool reduce_phase = true;
    Combine combine;              ///< Null for barrier / bcast.
    std::function<void()> on_done;  ///< Fires in NIC/event context.
  };

  RdmaNic(sim::NodeRuntime& node, Hal& hal);

  RdmaNic(const RdmaNic&) = delete;
  RdmaNic& operator=(const RdmaNic&) = delete;

  void set_write_handler(WriteHandler fn) { write_handler_ = std::move(fn); }

  /// RDMA write with immediate. `data` is borrowed until `on_origin_done`
  /// fires (the NIC gathers directly from registered memory — no host copy).
  void post_write(int dst, std::vector<std::byte> imm, const std::byte* data, std::size_t len,
                  std::function<void()> on_origin_done);
  /// RDMA write whose payload the NIC owns (control traffic, NACK service).
  void post_write_owned(int dst, std::vector<std::byte> imm, std::vector<std::byte> data,
                        std::function<void()> on_origin_done = nullptr);

  /// Expose `len` bytes at `data` for remote RDMA reads; the returned token
  /// travels in the channel's RTS. Valid until deregister_region.
  [[nodiscard]] lapi::Token register_region(const std::byte* data, std::size_t len);
  void deregister_region(lapi::Token token);

  /// RDMA read: pull `len` bytes of peer `src`'s region `token` straight
  /// into `local` (scatter at offset, zero host copies). `on_done` fires in
  /// NIC/event context when the last byte lands.
  void post_read(int src, lapi::Token token, std::byte* local, std::size_t len,
                 std::function<void()> on_done);

  /// Start one offloaded collective. All members must call with the same
  /// (ctx, seq) in posting order; early messages for a not-yet-posted
  /// collective are stashed on the adapter.
  void coll_start(CollOp&& op);

  // --- statistics ---
  [[nodiscard]] std::int64_t writes() const noexcept { return writes_; }
  [[nodiscard]] std::int64_t reads() const noexcept { return reads_; }
  [[nodiscard]] std::int64_t nic_colls() const noexcept { return nic_colls_; }
  [[nodiscard]] std::int64_t retransmits() const noexcept;
  [[nodiscard]] std::int64_t acks_sent() const noexcept;
  [[nodiscard]] std::int64_t duplicate_deliveries() const noexcept;
  [[nodiscard]] std::int64_t reacks_coalesced() const noexcept;
  [[nodiscard]] std::int64_t link_packets_sent() const noexcept;

  /// Test hook (mirrors Lapi::link_for_test).
  [[nodiscard]] lapi::ReliableLink& link_for_test(int peer) { return link(peer); }

 private:
  struct Reassembly {
    std::uint8_t kind = 0;
    std::vector<std::byte> uhdr;
    std::vector<std::byte> data;
    std::size_t received = 0;
    std::size_t total = 0;
    std::uint64_t order = 0;  ///< kWrite: per-(src->dst) post order (RC QP).
    bool have_first = false;
  };
  /// Per-source RC ordering state: writes whose reassembly finished ahead of
  /// an earlier write (multipath reordering) wait here.
  struct WriteOrder {
    std::uint64_t expected = 1;
    std::map<std::uint64_t, Reassembly> held;
  };
  struct PendingRead {
    std::byte* local = nullptr;
    std::size_t len = 0;
    std::size_t received = 0;
    std::function<void()> on_done;
  };
  struct Region {
    const std::byte* data = nullptr;
    std::size_t len = 0;
  };
  struct CollState {
    CollOp op;
    bool bound = false;
    bool up_sent = false;      ///< Reduce contribution forwarded (or root done).
    std::uint32_t next_mask = 1;  ///< Next child mask to fold (rank order).
    /// (phase << 16 | from_vrank) -> payload, stashed until consumable.
    std::map<std::uint32_t, std::vector<std::byte>> stash;
  };

  lapi::ReliableLink& link(int peer);
  void on_hal_packet(int src, std::span<const std::byte> bytes);
  void dispatch_message(int src, Reassembly&& m);
  void dispatch_write_in_order(int src, Reassembly&& m);
  void handle_read_req(int src, const lapi::PktHdr& h);
  void send_coll(int dst_task, std::uint32_t ctx, std::uint32_t seq, std::uint8_t phase,
                 std::uint16_t from_vrank, const std::byte* data, std::size_t len);
  void handle_coll(std::span<const std::byte> uhdr, std::vector<std::byte>&& data);
  void coll_progress(std::uint64_t key);

  sim::NodeRuntime& node_;
  Hal& hal_;
  WriteHandler write_handler_;

  std::map<int, std::unique_ptr<lapi::ReliableLink>> links_;
  std::map<std::pair<int, std::uint64_t>, Reassembly> reassembly_;  ///< (src, msg_id).
  std::map<std::uint32_t, PendingRead> pending_reads_;
  std::map<lapi::Token, Region> regions_;
  std::map<std::uint64_t, CollState> colls_;  ///< (ctx << 32 | seq).
  std::map<int, std::uint64_t> write_seq_out_;  ///< Per-destination post order.
  std::map<int, WriteOrder> write_order_in_;

  std::uint64_t next_msg_id_ = 1;
  std::uint32_t next_read_id_ = 1;
  lapi::Token next_region_token_ = 1;

  std::int64_t writes_ = 0;
  std::int64_t reads_ = 0;
  std::int64_t nic_colls_ = 0;
};

}  // namespace sp::hal
