// spsim sweep: a sharded batch server running (workload × config × seed) jobs
// across host cores with work stealing (DESIGN.md §17).
//
// Every job boots its own Machine, so jobs are fully independent and safe to
// run on concurrent host threads (rank-fiber tracking and the C ABI tables
// are thread_local). Results stream as JSON-lines the moment a job finishes,
// in completion order; the final report aggregates simulated elapsed-time
// percentiles per (workload, backend) group for BENCH_sweep.json.
#pragma once

#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "mpi/machine.hpp"

namespace sp::sweep {

struct SweepJob {
  std::string workload;  ///< pingpong | ring | allreduce | nas_ep | nas_is | abi_ep | abi_is
  mpi::Backend backend = mpi::Backend::kLapiEnhanced;
  int nodes = 4;
  int scale = 1;
  std::size_t eager = 4096;
  double drop = 0.0;
  unsigned long long seed = 1;
  std::string coll_spec;  ///< Optional --coll-algo pin spec.
  std::string topology;   ///< Optional topology name ("" = sp switch).
};

struct JobResult {
  int id = -1;
  SweepJob job;
  bool ok = false;        ///< Ran to completion without an exception.
  bool verified = false;  ///< The workload's internal invariant held.
  std::string error;
  std::int64_t elapsed_ns = 0;  ///< Simulated time.
  std::uint64_t sim_events = 0;
  std::uint64_t checksum = 0;  ///< Exact per-workload checksum.
  int worker = -1;             ///< Host worker that ran the job.
};

/// Simulated-time percentiles over one (workload, backend) group.
struct AggregateRow {
  std::string workload;
  std::string backend;
  int jobs = 0;
  double p50_ms = 0, p90_ms = 0, p99_ms = 0;
  double min_ms = 0, max_ms = 0, mean_ms = 0;
};

struct SweepOptions {
  int workers = 0;               ///< 0 = hardware_concurrency clamped to [1, 8].
  std::FILE* stream = nullptr;   ///< JSON-lines sink (completion order); null = off.
  bool fail_fast = false;        ///< Stop dispatching after the first failure.
};

struct SweepReport {
  std::vector<JobResult> results;  ///< In job-id order.
  std::vector<AggregateRow> rows;  ///< Sorted by (workload, backend).
  int workers = 0;
  std::uint64_t steals = 0;

  [[nodiscard]] bool all_ok() const {
    for (const auto& r : results) {
      if (!r.ok) return false;
    }
    return !results.empty();
  }
  [[nodiscard]] bool all_verified() const {
    for (const auto& r : results) {
      if (!r.ok || !r.verified) return false;
    }
    return !results.empty();
  }
};

[[nodiscard]] const char* backend_token(mpi::Backend b) noexcept;

/// The CI quick matrix: 7 workloads x {native, enhanced, rdma} x 2 eager
/// limits x {lossless, 1% drop} x `seeds` seeds = 252 jobs at seeds=3.
[[nodiscard]] std::vector<SweepJob> quick_matrix(int seeds = 3);

/// Run one job synchronously on the calling thread.
[[nodiscard]] JobResult run_job(const SweepJob& job, int id);

/// Run all jobs across a work-stealing worker pool; blocks until drained.
[[nodiscard]] SweepReport run_sweep(const std::vector<SweepJob>& jobs,
                                    const SweepOptions& opt);

/// One JSON object per line, completion-ordered (the streaming format).
void write_jsonl(const JobResult& r, std::FILE* f);

/// BENCH_sweep.json: totals + per-(workload, backend) percentile rows.
[[nodiscard]] bool write_bench_json(const SweepReport& rep, const std::string& path);

}  // namespace sp::sweep
