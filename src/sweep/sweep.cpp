#include "sweep/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "mpi/coll.hpp"
#include "mpiabi/apps/apps.h"
#include "mpiabi/mpiabi.hpp"
#include "nas/kernels.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "sweep/work_queue.hpp"

namespace sp::sweep {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

sim::MachineConfig job_config(const SweepJob& job) {
  sim::MachineConfig cfg = sim::MachineConfig::tbmx_332();
  cfg.eager_limit = job.eager;
  cfg.packet_drop_rate = job.drop;
  cfg.fabric_seed = job.seed * 0x9e3779b9ULL + 1;
  if (job.drop > 0) cfg.retransmit_timeout_ns = 400'000;
  if (!job.topology.empty() && !net::topology_from_name(job.topology, &cfg.topology)) {
    throw std::invalid_argument("bad topology: " + job.topology);
  }
  if (!job.coll_spec.empty()) {
    std::string err;
    if (!mpi::coll::apply_algo_spec(cfg, job.coll_spec, &err)) {
      throw std::invalid_argument("bad coll spec: " + err);
    }
  }
  return cfg;
}

/// Ping-pong between ranks 0 and 1; payload size and fill vary with the seed.
/// Checksum folds every byte rank 0 got back, so a corrupted echo shows up.
void run_pingpong(mpi::Machine& m, const SweepJob& job, JobResult* res) {
  const std::size_t bytes = std::size_t{64} << (job.seed % 6);
  const int iters = 4 + job.scale * 4;
  std::atomic<bool> ok{true};
  std::atomic<std::uint64_t> sum{0};
  m.run([&](mpi::Mpi& mpi) {
    auto& w = mpi.world();
    if (w.rank() > 1) return;
    std::vector<std::uint8_t> buf(bytes);
    sim::Pcg32 rng(job.seed + 7, 1);
    std::uint64_t h = kFnvOffset;
    for (int i = 0; i < iters; ++i) {
      if (w.rank() == 0) {
        for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
        const std::vector<std::uint8_t> sent = buf;
        mpi.send(buf.data(), bytes, mpi::Datatype::kByte, 1, i, w);
        mpi.recv(buf.data(), bytes, mpi::Datatype::kByte, 1, i, w);
        if (buf != sent) ok = false;
        h = fnv(h, buf.data(), bytes);
      } else {
        mpi.recv(buf.data(), bytes, mpi::Datatype::kByte, 0, i, w);
        mpi.send(buf.data(), bytes, mpi::Datatype::kByte, 0, i, w);
      }
    }
    if (w.rank() == 0) sum = h;
  });
  res->verified = ok.load();
  res->checksum = sum.load();
}

/// Each rank circulates a token the whole way around the ring, folding every
/// hop; all ranks must agree on the final fold.
void run_ring(mpi::Machine& m, const SweepJob& job, JobResult* res) {
  std::atomic<bool> ok{true};
  std::atomic<std::uint64_t> sum{0};
  m.run([&](mpi::Mpi& mpi) {
    auto& w = mpi.world();
    const int n = w.size();
    const int me = w.rank();
    std::int64_t token = static_cast<std::int64_t>(job.seed % 1024) + me;
    std::uint64_t h = kFnvOffset;
    for (int hop = 0; hop < n; ++hop) {
      std::int64_t in = 0;
      mpi.sendrecv(&token, 1, (me + 1) % n, 5, &in, 1, (me - 1 + n) % n, 5,
                   mpi::Datatype::kLong, w);
      token = in + 1;
      h = fnv(h, &token, sizeof token);
    }
    // After n hops every rank holds its own seed value plus n increments.
    const std::int64_t expect = static_cast<std::int64_t>(job.seed % 1024) + me + n;
    if (token != expect) ok = false;
    std::uint64_t agreed = h;
    mpi.bcast(&agreed, 1, mpi::Datatype::kLong, 0, w);
    if (me == 0) sum = agreed;
  });
  res->verified = ok.load();
  res->checksum = sum.load();
}

/// Integer allreduce checked against an independently recomputed expectation.
void run_allreduce(mpi::Machine& m, const SweepJob& job, JobResult* res) {
  constexpr std::size_t kCount = 96;
  std::atomic<bool> ok{true};
  std::atomic<std::uint64_t> sum{0};
  const int n = m.num_tasks();
  m.run([&](mpi::Mpi& mpi) {
    auto& w = mpi.world();
    auto fill = [&](int rank) {
      std::vector<std::int64_t> v(kCount);
      sim::Pcg32 rng(job.seed + 11, static_cast<std::uint64_t>(rank) + 1);
      for (auto& x : v) x = static_cast<std::int64_t>(rng.next() % 4096);
      return v;
    };
    const std::vector<std::int64_t> mine = fill(w.rank());
    std::vector<std::int64_t> out(kCount, 0);
    mpi.allreduce(mine.data(), out.data(), kCount, mpi::Datatype::kLong, mpi::Op::kSum, w);
    std::vector<std::int64_t> expect(kCount, 0);
    for (int r = 0; r < n; ++r) {
      const auto v = fill(r);
      for (std::size_t i = 0; i < kCount; ++i) expect[i] += v[i];
    }
    if (out != expect) ok = false;
    if (w.rank() == 0) sum = fnv(kFnvOffset, out.data(), kCount * sizeof(std::int64_t));
  });
  res->verified = ok.load();
  res->checksum = sum.load();
}

void run_nas(mpi::Machine& m, const SweepJob& job, bool is_kernel, JobResult* res) {
  std::atomic<bool> ok{true};
  std::atomic<std::uint64_t> sum{0};
  m.run([&](mpi::Mpi& mpi) {
    const nas::KernelResult r =
        is_kernel ? nas::run_is(mpi, job.scale) : nas::run_ep(mpi, job.scale);
    if (!r.verified) ok = false;
    if (mpi.world().rank() == 0) sum = r.checksum;
  });
  res->verified = ok.load();
  res->checksum = sum.load();
}

void run_abi(mpi::Machine& m, const SweepJob& job, bool is_kernel, JobResult* res) {
  const mpiabi::RunResult r = mpiabi::run_program(
      m, is_kernel ? sp_abi_nas_is_main : sp_abi_nas_ep_main, {std::to_string(job.scale)});
  res->verified = r.ok();
  res->checksum = r.ranks.empty() ? 0 : r.ranks[0].checksum;
}

}  // namespace

const char* backend_token(mpi::Backend b) noexcept {
  switch (b) {
    case mpi::Backend::kNativePipes: return "native";
    case mpi::Backend::kLapiBase: return "base";
    case mpi::Backend::kLapiCounters: return "counters";
    case mpi::Backend::kLapiEnhanced: return "enhanced";
    case mpi::Backend::kRdma: return "rdma";
  }
  return "?";
}

std::vector<SweepJob> quick_matrix(int seeds) {
  const char* workloads[] = {"pingpong", "ring",   "allreduce", "nas_ep",
                             "nas_is",   "abi_ep", "abi_is"};
  const mpi::Backend backends[] = {mpi::Backend::kNativePipes, mpi::Backend::kLapiEnhanced,
                                   mpi::Backend::kRdma};
  const std::size_t eagers[] = {1024, 4096};
  const double drops[] = {0.0, 0.01};
  std::vector<SweepJob> jobs;
  for (const char* w : workloads) {
    for (const mpi::Backend b : backends) {
      for (const std::size_t e : eagers) {
        for (const double dr : drops) {
          for (int s = 1; s <= seeds; ++s) {
            SweepJob j;
            j.workload = w;
            j.backend = b;
            j.nodes = 4;
            j.scale = 1;
            j.eager = e;
            j.drop = dr;
            j.seed = static_cast<unsigned long long>(s);
            jobs.push_back(std::move(j));
          }
        }
      }
    }
  }
  return jobs;
}

JobResult run_job(const SweepJob& job, int id) {
  JobResult res;
  res.id = id;
  res.job = job;
  try {
    const sim::MachineConfig cfg = job_config(job);
    mpi::Machine m(cfg, job.nodes, job.backend);
    if (job.workload == "pingpong") {
      run_pingpong(m, job, &res);
    } else if (job.workload == "ring") {
      run_ring(m, job, &res);
    } else if (job.workload == "allreduce") {
      run_allreduce(m, job, &res);
    } else if (job.workload == "nas_ep") {
      run_nas(m, job, /*is_kernel=*/false, &res);
    } else if (job.workload == "nas_is") {
      run_nas(m, job, /*is_kernel=*/true, &res);
    } else if (job.workload == "abi_ep") {
      run_abi(m, job, /*is_kernel=*/false, &res);
    } else if (job.workload == "abi_is") {
      run_abi(m, job, /*is_kernel=*/true, &res);
    } else {
      throw std::invalid_argument("unknown workload: " + job.workload);
    }
    res.elapsed_ns = m.elapsed();
    res.sim_events = m.stats().sim_events;
    res.ok = true;
  } catch (const std::exception& e) {
    res.ok = false;
    res.verified = false;
    res.error = e.what();
  }
  return res;
}

void write_jsonl(const JobResult& r, std::FILE* f) {
  std::fprintf(f,
               "{\"id\":%d,\"workload\":\"%s\",\"backend\":\"%s\",\"nodes\":%d,"
               "\"scale\":%d,\"eager\":%zu,\"drop\":%g,\"seed\":%llu,\"ok\":%s,"
               "\"verified\":%s,\"elapsed_ns\":%lld,\"sim_events\":%llu,"
               "\"checksum\":\"%016llx\",\"worker\":%d,\"error\":\"%s\"}\n",
               r.id, r.job.workload.c_str(), backend_token(r.job.backend), r.job.nodes,
               r.job.scale, r.job.eager, r.job.drop, r.job.seed, r.ok ? "true" : "false",
               r.verified ? "true" : "false", static_cast<long long>(r.elapsed_ns),
               static_cast<unsigned long long>(r.sim_events),
               static_cast<unsigned long long>(r.checksum), r.worker, r.error.c_str());
}

SweepReport run_sweep(const std::vector<SweepJob>& jobs, const SweepOptions& opt) {
  SweepReport rep;
  int workers = opt.workers;
  if (workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = static_cast<int>(std::clamp(hw, 1u, 8u));
  }
  workers = std::min<int>(workers, std::max<std::size_t>(jobs.size(), 1));
  rep.workers = workers;
  rep.results.resize(jobs.size());

  WorkStealingQueue queue(workers);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    queue.push(static_cast<int>(i % static_cast<std::size_t>(workers)), i);
  }

  std::mutex mu;  // guards rep.results writes + the stream
  std::atomic<bool> stop{false};
  auto worker_fn = [&](int wid) {
    std::size_t idx = 0;
    while (!stop.load(std::memory_order_relaxed) && queue.pop(wid, &idx)) {
      JobResult r = run_job(jobs[idx], static_cast<int>(idx));
      r.worker = wid;
      if (opt.fail_fast && !r.ok) stop.store(true, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(mu);
      if (opt.stream != nullptr) {
        write_jsonl(r, opt.stream);
        std::fflush(opt.stream);
      }
      rep.results[idx] = std::move(r);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker_fn, w);
  for (auto& t : pool) t.join();
  rep.steals = queue.steals();

  // Aggregate simulated elapsed time per (workload, backend) over ok jobs.
  std::map<std::pair<std::string, std::string>, std::vector<double>> groups;
  for (const auto& r : rep.results) {
    if (r.id < 0 || !r.ok) continue;
    groups[{r.job.workload, backend_token(r.job.backend)}].push_back(
        static_cast<double>(r.elapsed_ns) / 1e6);
  }
  auto pct = [](const std::vector<double>& v, double q) {
    const auto n = static_cast<double>(v.size());
    auto idx = static_cast<std::size_t>(std::ceil(q / 100.0 * n)) - 1;
    idx = std::min(idx, v.size() - 1);
    return v[idx];
  };
  for (auto& [key, v] : groups) {
    std::sort(v.begin(), v.end());
    AggregateRow row;
    row.workload = key.first;
    row.backend = key.second;
    row.jobs = static_cast<int>(v.size());
    row.p50_ms = pct(v, 50);
    row.p90_ms = pct(v, 90);
    row.p99_ms = pct(v, 99);
    row.min_ms = v.front();
    row.max_ms = v.back();
    double total = 0;
    for (const double x : v) total += x;
    row.mean_ms = total / static_cast<double>(v.size());
    rep.rows.push_back(std::move(row));
  }
  return rep;
}

bool write_bench_json(const SweepReport& rep, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  int ok_jobs = 0, verified_jobs = 0;
  for (const auto& r : rep.results) {
    ok_jobs += r.ok ? 1 : 0;
    verified_jobs += (r.ok && r.verified) ? 1 : 0;
  }
  std::fprintf(f, "{\n  \"total_jobs\": %zu,\n  \"ok_jobs\": %d,\n", rep.results.size(),
               ok_jobs);
  std::fprintf(f, "  \"verified_jobs\": %d,\n  \"all_ok\": %s,\n  \"all_verified\": %s,\n",
               verified_jobs, rep.all_ok() ? "true" : "false",
               rep.all_verified() ? "true" : "false");
  std::fprintf(f, "  \"workers\": %d,\n  \"steals\": %llu,\n  \"rows\": [\n", rep.workers,
               static_cast<unsigned long long>(rep.steals));
  for (std::size_t i = 0; i < rep.rows.size(); ++i) {
    const AggregateRow& r = rep.rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"backend\": \"%s\", \"jobs\": %d, "
                 "\"p50_ms\": %.4f, \"p90_ms\": %.4f, \"p99_ms\": %.4f, "
                 "\"min_ms\": %.4f, \"max_ms\": %.4f, \"mean_ms\": %.4f}%s\n",
                 r.workload.c_str(), r.backend.c_str(), r.jobs, r.p50_ms, r.p90_ms, r.p99_ms,
                 r.min_ms, r.max_ms, r.mean_ms, i + 1 < rep.rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace sp::sweep
