// Work-stealing job queue for the spsim sweep batch server (DESIGN.md §17).
//
// Jobs are opaque indices into a caller-owned job table. Each worker owns a
// sharded deque: the owner pushes and pops at the back (LIFO keeps its cache
// warm), thieves take from the front (FIFO steals the oldest — and for a
// seeded queue, the largest-remaining — work first). Jobs never re-enter the
// queue, so "every shard empty" is a complete termination condition and no
// condition variable is needed: a worker that fails a full sweep of shards is
// done.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace sp::sweep {

class WorkStealingQueue {
 public:
  explicit WorkStealingQueue(int workers) {
    shards_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) shards_.push_back(std::make_unique<Shard>());
  }

  [[nodiscard]] int workers() const noexcept { return static_cast<int>(shards_.size()); }

  /// Enqueue a job on `worker`'s shard (callers seed round-robin before the
  /// workers start; a worker may also push follow-up jobs to itself).
  void push(int worker, std::size_t job) {
    Shard& s = *shards_[static_cast<std::size_t>(worker)];
    const std::lock_guard<std::mutex> lock(s.mu);
    s.q.push_back(job);
  }

  /// Dequeue for `worker`: its own newest job, else the oldest job of the
  /// nearest non-empty shard (round-robin from worker+1). False = queue fully
  /// drained.
  [[nodiscard]] bool pop(int worker, std::size_t* out) {
    const int n = workers();
    {
      Shard& own = *shards_[static_cast<std::size_t>(worker)];
      const std::lock_guard<std::mutex> lock(own.mu);
      if (!own.q.empty()) {
        *out = own.q.back();
        own.q.pop_back();
        return true;
      }
    }
    for (int k = 1; k < n; ++k) {
      Shard& victim = *shards_[static_cast<std::size_t>((worker + k) % n)];
      const std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.q.empty()) {
        *out = victim.q.front();
        victim.q.pop_front();
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  /// Jobs currently enqueued across all shards (racy under concurrency;
  /// exact once the workers have stopped).
  [[nodiscard]] std::size_t remaining() const {
    std::size_t total = 0;
    for (const auto& s : shards_) {
      const std::lock_guard<std::mutex> lock(s->mu);
      total += s->q.size();
    }
    return total;
  }

  [[nodiscard]] std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::deque<std::size_t> q;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace sp::sweep
