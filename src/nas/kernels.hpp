// Mini-NAS Parallel Benchmarks (v2.3 subset), §6.2 of the paper.
//
// Each kernel reproduces the communication pattern of its NAS namesake on a
// small, verifiable problem: real data moves through MPI and real (light)
// arithmetic produces a checksum, while the dominant computation *time* is
// charged through Mpi::compute() so the communication fraction — which
// determines how much a faster MPI helps — is representative:
//
//   EP  embarrassingly parallel     one reduction at the end (~0% comm)
//   IS  integer bucket sort         allreduce + all-to-all-v of keys
//   CG  conjugate gradient          halo exchanges + many small allreduces
//   MG  multigrid V-cycles          per-level halos, compute-dominated
//   FT  spectral method             iterated global transposes (alltoall)
//   LU  SSOR wavefront              pipelined many-small-message sweeps
//   BT  block-tridiagonal ADI       directional sweeps with pencil exchanges
//   SP  scalar-pentadiagonal ADI    like BT, heavier local compute
//
// All kernels run on any number of ranks >= 1 and verify an internal
// invariant; checksums are exact (integer or order-fixed) so every backend
// must produce bit-identical results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpi/mpi.hpp"

namespace sp::nas {

struct KernelResult {
  std::string name;
  bool verified = false;
  /// Exact checksum; identical across backends for the same (scale, ranks).
  std::uint64_t checksum = 0;
};

using KernelFn = KernelResult (*)(mpi::Mpi&, int scale);

KernelResult run_ep(mpi::Mpi& mpi, int scale);
KernelResult run_is(mpi::Mpi& mpi, int scale);
KernelResult run_cg(mpi::Mpi& mpi, int scale);
KernelResult run_mg(mpi::Mpi& mpi, int scale);
KernelResult run_ft(mpi::Mpi& mpi, int scale);
KernelResult run_lu(mpi::Mpi& mpi, int scale);
KernelResult run_bt(mpi::Mpi& mpi, int scale);
KernelResult run_sp(mpi::Mpi& mpi, int scale);

/// All eight kernels in the paper's reporting order.
[[nodiscard]] std::vector<std::pair<std::string, KernelFn>> all_kernels();

}  // namespace sp::nas
