// CG (conjugate gradient) and MG (multigrid) mini-kernels.
#include <cmath>
#include <cstring>

#include "nas/kernels.hpp"

namespace sp::nas {

using mpi::Comm;
using mpi::Datatype;
using mpi::Mpi;
using mpi::Op;

namespace {

/// Exchange halo bands of `width` doubles with both neighbours (1-D chain).
void halo_exchange(Mpi& mpi, const Comm& w, std::vector<double>& x, std::size_t width,
                   std::size_t interior, int tag) {
  const int me = w.rank();
  const int n = w.size();
  // x layout: [left halo | interior | right halo], halos of `width`.
  double* left_halo = x.data();
  double* my_left = x.data() + width;
  double* my_right = x.data() + interior;  // last band of the interior
  double* right_halo = x.data() + width + interior;
  if (me + 1 < n) {
    mpi.sendrecv(my_right, width, me + 1, tag, right_halo, width, me + 1, tag + 1,
                 Datatype::kDouble, w);
  }
  if (me > 0) {
    mpi.sendrecv(my_left, width, me - 1, tag + 1, left_halo, width, me - 1, tag,
                 Datatype::kDouble, w);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// CG: conjugate-gradient iterations on a banded (1-D partitioned) operator:
// per iteration one halo exchange of the boundary band plus two small
// allreduces for the dot products — many small, latency-bound messages.
// ---------------------------------------------------------------------------
KernelResult run_cg(Mpi& mpi, int scale) {
  Comm& w = mpi.world();
  const std::size_t rows = 1024u * static_cast<std::size_t>(scale);
  const std::size_t width = 512;  // operator bandwidth = halo width (4 KiB)
  const int iters = 16;

  // Operator: damped Laplacian-like stencil over the band edges.
  std::vector<double> x(rows + 2 * width, 0.0);
  std::vector<double> r(rows), p_full(rows + 2 * width, 0.0), ap(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    r[i] = 1.0 + static_cast<double>((i * 2654435761u) % 97) / 97.0;
  }
  double* p = p_full.data() + width;
  std::memcpy(p, r.data(), rows * sizeof(double));

  double rho = 0.0;
  {
    double local = 0.0;
    for (std::size_t i = 0; i < rows; ++i) local += r[i] * r[i];
    mpi.allreduce(&local, &rho, 1, Datatype::kDouble, Op::kSum, w);
  }
  const double rho0 = rho;

  for (int it = 0; it < iters; ++it) {
    halo_exchange(mpi, w, p_full, width, rows, 100 + 2 * it);
    // ap = A p : diagonal + coupling to the bands `width` away.
    for (std::size_t i = 0; i < rows; ++i) {
      const double lo = p[static_cast<std::ptrdiff_t>(i) - static_cast<std::ptrdiff_t>(width)];
      const double hi = p[i + width];
      ap[i] = 2.5 * p[i] - 0.8 * lo - 0.8 * hi;
    }
    mpi.compute(static_cast<sim::TimeNs>(rows) * 160);  // matvec flops

    double local_pap = 0.0, pap = 0.0;
    for (std::size_t i = 0; i < rows; ++i) local_pap += p[i] * ap[i];
    mpi.allreduce(&local_pap, &pap, 1, Datatype::kDouble, Op::kSum, w);
    const double alpha = rho / pap;

    double local_rho = 0.0, rho_new = 0.0;
    for (std::size_t i = 0; i < rows; ++i) {
      x[width + i] += alpha * p[i];
      r[i] -= alpha * ap[i];
      local_rho += r[i] * r[i];
    }
    mpi.compute(static_cast<sim::TimeNs>(rows) * 90);
    mpi.allreduce(&local_rho, &rho_new, 1, Datatype::kDouble, Op::kSum, w);

    const double beta = rho_new / rho;
    rho = rho_new;
    for (std::size_t i = 0; i < rows; ++i) p[i] = r[i] + beta * p[i];
    mpi.compute(static_cast<sim::TimeNs>(rows) * 50);
  }

  KernelResult res;
  res.name = "CG";
  res.verified = std::isfinite(rho) && rho < rho0;
  std::uint64_t bits;
  std::memcpy(&bits, &rho, sizeof(double));
  res.checksum = bits;
  return res;
}

// ---------------------------------------------------------------------------
// MG: V-cycles over a 1-D grid hierarchy. Halo messages are tiny and per
// level, but relaxation work dominates — the paper found <~1% benefit here.
// ---------------------------------------------------------------------------
KernelResult run_mg(Mpi& mpi, int scale) {
  Comm& w = mpi.world();
  const int levels = 6;
  const std::size_t fine = 4096u * static_cast<std::size_t>(scale);
  const int cycles = 4;
  constexpr std::size_t kH = 32;  // halo band width (256 B faces)

  // One grid per level; layout [halo kH | interior | halo kH].
  std::vector<std::vector<double>> u(levels), f(levels);
  std::size_t sz = fine;
  for (int l = 0; l < levels; ++l) {
    u[static_cast<std::size_t>(l)].assign(sz + 2 * kH, 0.0);
    f[static_cast<std::size_t>(l)].assign(sz + 2 * kH, 0.0);
    sz /= 2;
  }
  for (std::size_t i = 0; i < fine; ++i) {
    f[0][kH + i] =
        static_cast<double>(((i + 1 + static_cast<std::size_t>(w.rank()) * fine) * 40503u) % 211) /
        211.0;
  }

  auto relax = [&](int l, int sweeps) {
    auto& ul = u[static_cast<std::size_t>(l)];
    auto& fl = f[static_cast<std::size_t>(l)];
    const std::size_t m = ul.size() - 2 * kH;
    for (int s = 0; s < sweeps; ++s) {
      halo_exchange(mpi, w, ul, kH, m, 500 + 2 * l);
      for (std::size_t i = kH; i < kH + m; ++i) {
        ul[i] = 0.5 * (ul[i - 1] + ul[i + 1] + fl[i]) * 0.98;
      }
      // Heavier per-point work than CG: MG smoothing dominates runtime.
      mpi.compute(static_cast<sim::TimeNs>(m) * 90);
    }
  };

  for (int c = 0; c < cycles; ++c) {
    for (int l = 0; l < levels - 1; ++l) {
      relax(l, 2);
      auto& fl = f[static_cast<std::size_t>(l)];
      auto& fc = f[static_cast<std::size_t>(l + 1)];
      const std::size_t mc = fc.size() - 2 * kH;
      for (std::size_t i = 0; i < mc; ++i) {
        fc[kH + i] = 0.5 * (fl[kH + 2 * i] + fl[kH + 2 * i + 1]);
      }
      mpi.compute(static_cast<sim::TimeNs>(mc) * 30);
    }
    relax(levels - 1, 8);
    for (int l = levels - 2; l >= 0; --l) {
      auto& ul = u[static_cast<std::size_t>(l)];
      auto& uc = u[static_cast<std::size_t>(l + 1)];
      const std::size_t m = ul.size() - 2 * kH;
      for (std::size_t i = 0; i < m; ++i) ul[kH + i] += uc[kH + i / 2];
      mpi.compute(static_cast<sim::TimeNs>(m) * 30);
      relax(l, 2);
    }
  }

  // Residual-like norm for verification.
  double local = 0.0;
  for (std::size_t i = 0; i < fine; ++i) local += u[0][kH + i] * u[0][kH + i];
  double norm = 0.0;
  mpi.allreduce(&local, &norm, 1, Datatype::kDouble, Op::kSum, w);

  KernelResult res;
  res.name = "MG";
  res.verified = std::isfinite(norm) && norm > 0.0;
  std::uint64_t bits;
  std::memcpy(&bits, &norm, sizeof(double));
  res.checksum = bits;
  return res;
}

}  // namespace sp::nas
