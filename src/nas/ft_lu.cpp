// FT (spectral / transpose) and LU (SSOR wavefront) mini-kernels.
#include <cmath>
#include <cstring>

#include "nas/kernels.hpp"

namespace sp::nas {

using mpi::Comm;
using mpi::Datatype;
using mpi::Mpi;
using mpi::Op;

// ---------------------------------------------------------------------------
// FT: iterated "evolve + global transpose" on a row-partitioned 2-D array —
// the all-to-all transpose moves the entire dataset every iteration, making
// this bandwidth-sensitive. Transpose correctness is verified exactly by a
// round-trip before the timed loop.
// ---------------------------------------------------------------------------
namespace {

/// Global transpose of an N x N int64 array row-partitioned over n ranks
/// (N divisible by n). rows_local = N/n.
void transpose(Mpi& mpi, const Comm& w, std::vector<std::int64_t>& a, std::size_t N) {
  const auto n = static_cast<std::size_t>(w.size());
  const std::size_t rl = N / n;  // local rows
  // Pack: block destined to rank r is the local rows x columns [r*rl, ...).
  std::vector<std::int64_t> send(rl * N), recv(rl * N);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < rl; ++i) {
      std::memcpy(&send[r * rl * rl + i * rl], &a[i * N + r * rl], rl * sizeof(std::int64_t));
    }
  }
  mpi.compute(static_cast<sim::TimeNs>(rl * N) * 6);  // pack cost
  mpi.alltoall(send.data(), rl * rl, recv.data(), Datatype::kLong, w);
  // Unpack with local transposition of each block.
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < rl; ++i) {
      for (std::size_t j = 0; j < rl; ++j) {
        a[j * N + r * rl + i] = recv[r * rl * rl + i * rl + j];
      }
    }
  }
  mpi.compute(static_cast<sim::TimeNs>(rl * N) * 6);  // unpack cost
}

}  // namespace

KernelResult run_ft(Mpi& mpi, int scale) {
  Comm& w = mpi.world();
  const auto n = static_cast<std::size_t>(w.size());
  std::size_t N = 64u * static_cast<std::size_t>(scale);
  while (N % n != 0) ++N;
  const std::size_t rl = N / n;
  const int iters = 6;

  std::vector<std::int64_t> a(rl * N);
  const std::size_t row0 = static_cast<std::size_t>(w.rank()) * rl;
  for (std::size_t i = 0; i < rl; ++i) {
    for (std::size_t j = 0; j < N; ++j) a[i * N + j] = static_cast<std::int64_t>((row0 + i) * N + j);
  }

  // Exact round-trip check: two transposes must restore the original layout.
  const std::vector<std::int64_t> orig = a;
  transpose(mpi, w, a, N);
  transpose(mpi, w, a, N);
  bool ok = a == orig;

  for (int it = 0; it < iters; ++it) {
    for (auto& v : a) {  // "evolve"; unsigned wrap-around, bit-identical to the old signed form
      v = static_cast<std::int64_t>(static_cast<std::uint64_t>(v) * 6364136223846793005ULL +
                                    1442695040888963407ULL);
    }
    mpi.compute(static_cast<sim::TimeNs>(rl * N) * 200);  // FFT butterflies
    transpose(mpi, w, a, N);
  }

  std::uint64_t local = 0;
  for (auto v : a) local += static_cast<std::uint64_t>(v);
  std::uint64_t total = 0;
  mpi.allreduce(&local, &total, 1, Datatype::kLong, Op::kSum, w);

  KernelResult res;
  res.name = "FT";
  res.verified = ok;
  res.checksum = total;
  return res;
}

// ---------------------------------------------------------------------------
// LU: SSOR-style pipelined wavefront. The domain is 1-D partitioned along x;
// each row of the sweep needs the boundary cells from the left neighbour
// before it can proceed and forwards its own rightmost cells — a flood of
// small messages whose cost is pure latency. The paper saw its largest NAS
// gain here.
// ---------------------------------------------------------------------------
KernelResult run_lu(Mpi& mpi, int scale) {
  Comm& w = mpi.world();
  const int me = w.rank();
  const int n = w.size();
  const std::size_t ny = 48u * static_cast<std::size_t>(scale);  // pipelined rows
  const std::size_t nx = 256;  // local columns
  const int sweeps = 4;
  constexpr std::size_t kB = 256;  // boundary cells exchanged per row (2 KiB)

  std::vector<double> grid(ny * nx);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i] = static_cast<double>(((i + 1) * (static_cast<std::size_t>(me) + 3)) % 137) / 137.0;
  }

  for (int s = 0; s < sweeps; ++s) {
    for (std::size_t j = 0; j < ny; ++j) {
      double bnd[kB] = {};
      if (me > 0) {
        mpi.recv(bnd, kB, Datatype::kDouble, me - 1, static_cast<int>(j), w);
      }
      double carry = bnd[0] + bnd[kB / 2] + bnd[kB - 1];
      double* row = &grid[j * nx];
      for (std::size_t i = 0; i < nx; ++i) {
        row[i] = 0.6 * row[i] + 0.4 * carry;
        carry = row[i];
      }
      mpi.compute(static_cast<sim::TimeNs>(nx) * 700);  // per-row relaxation
      if (me + 1 < n) {
        mpi.send(&row[nx - kB], kB, Datatype::kDouble, me + 1, static_cast<int>(j), w);
      }
    }
  }

  double local = 0.0;
  for (auto v : grid) local += v;
  double total = 0.0;
  mpi.allreduce(&local, &total, 1, Datatype::kDouble, Op::kSum, w);

  KernelResult res;
  res.name = "LU";
  res.verified = std::isfinite(total) && total != 0.0;
  std::uint64_t bits;
  std::memcpy(&bits, &total, sizeof(double));
  res.checksum = bits;
  return res;
}

}  // namespace sp::nas
