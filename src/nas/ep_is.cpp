// EP (embarrassingly parallel) and IS (integer sort) mini-kernels.
#include <algorithm>
#include <cassert>

#include "nas/kernels.hpp"
#include "sim/rng.hpp"

namespace sp::nas {

using mpi::Comm;
using mpi::Datatype;
using mpi::Mpi;
using mpi::Op;

// ---------------------------------------------------------------------------
// EP: generate pseudo-random pairs, classify them into annuli, and combine the
// counts with a single reduction at the end. Essentially zero communication.
// ---------------------------------------------------------------------------
KernelResult run_ep(Mpi& mpi, int scale) {
  Comm& w = mpi.world();
  const int n = w.size();
  const std::int64_t samples_per_rank = 8192LL * scale;

  sim::Pcg32 rng(0x9e3779b9u + static_cast<std::uint64_t>(w.rank()));
  std::int64_t q[4] = {0, 0, 0, 0};
  for (std::int64_t i = 0; i < samples_per_rank; ++i) {
    const std::uint32_t x = rng.next();
    const std::uint32_t y = rng.next();
    // Radius-squared quartile in fixed point.
    const std::uint64_t r2 =
        (static_cast<std::uint64_t>(x) * x >> 34) + (static_cast<std::uint64_t>(y) * y >> 34);
    ++q[std::min<std::uint64_t>(r2 >> 28, 3)];
  }
  // The real EP spends ~150 us per thousand samples on a 332 MHz node.
  mpi.compute(samples_per_rank * 900);

  std::int64_t total[4];
  mpi.allreduce(q, total, 4, Datatype::kLong, Op::kSum, w);

  KernelResult res;
  res.name = "EP";
  std::int64_t sum = 0;
  std::uint64_t chk = 0;
  for (int i = 0; i < 4; ++i) {
    sum += total[i];
    chk = chk * 1000003u + static_cast<std::uint64_t>(total[i]);
  }
  res.verified = sum == samples_per_rank * n;
  res.checksum = chk;
  return res;
}

// ---------------------------------------------------------------------------
// IS: parallel bucket sort of uniform random integer keys. One allreduce of
// the bucket histogram, then an all-to-all-v moving every key to its bucket
// owner, then a local sort — bandwidth- and latency-sensitive.
// ---------------------------------------------------------------------------
KernelResult run_is(Mpi& mpi, int scale) {
  Comm& w = mpi.world();
  const int n = w.size();
  const int me = w.rank();
  const std::size_t keys_per_rank = 8192u * static_cast<std::size_t>(scale);
  constexpr std::uint32_t kKeyRange = 1u << 20;
  const std::uint32_t bucket_width = kKeyRange / static_cast<std::uint32_t>(n) + 1;

  sim::Pcg32 rng(0xabcdef12u + static_cast<std::uint64_t>(me));
  std::vector<std::int32_t> keys(keys_per_rank);
  std::uint64_t local_sum = 0;
  for (auto& k : keys) {
    k = static_cast<std::int32_t>(rng.next_below(kKeyRange));
    local_sum += static_cast<std::uint64_t>(k);
  }

  // Bucketise locally (counting pass + permute), ~60 ns/key on the era node.
  std::vector<std::size_t> scounts(static_cast<std::size_t>(n), 0);
  for (auto k : keys) ++scounts[static_cast<std::size_t>(k) / bucket_width];
  std::vector<std::size_t> sdispls(static_cast<std::size_t>(n), 0);
  for (int r = 1; r < n; ++r) sdispls[static_cast<std::size_t>(r)] =
      sdispls[static_cast<std::size_t>(r - 1)] + scounts[static_cast<std::size_t>(r - 1)];
  std::vector<std::int32_t> bucketed(keys_per_rank);
  {
    auto cursor = sdispls;
    for (auto k : keys) {
      const auto b = static_cast<std::size_t>(k) / bucket_width;
      bucketed[cursor[b]++] = k;
    }
  }
  mpi.compute(static_cast<sim::TimeNs>(keys_per_rank) * 60);

  // Exchange bucket sizes, then the keys themselves.
  std::vector<std::size_t> rcounts(static_cast<std::size_t>(n));
  mpi.alltoall(scounts.data(), 1, rcounts.data(), Datatype::kLong, w);
  std::vector<std::size_t> rdispls(static_cast<std::size_t>(n), 0);
  std::size_t total_recv = rcounts[0];
  for (int r = 1; r < n; ++r) {
    rdispls[static_cast<std::size_t>(r)] =
        rdispls[static_cast<std::size_t>(r - 1)] + rcounts[static_cast<std::size_t>(r - 1)];
    total_recv += rcounts[static_cast<std::size_t>(r)];
  }
  std::vector<std::int32_t> mine(total_recv);
  mpi.alltoallv(bucketed.data(), scounts.data(), sdispls.data(), mine.data(), rcounts.data(),
                rdispls.data(), Datatype::kInt, w);

  std::sort(mine.begin(), mine.end());
  mpi.compute(static_cast<sim::TimeNs>(total_recv) * 80);

  // Verify: locally sorted, in my bucket range, and nothing lost globally.
  bool ok = std::is_sorted(mine.begin(), mine.end());
  for (auto k : mine) {
    ok = ok && static_cast<std::size_t>(k) / bucket_width == static_cast<std::size_t>(me);
  }
  std::uint64_t sums[2] = {local_sum, total_recv};
  std::uint64_t totals[2];
  mpi.allreduce(sums, totals, 2, Datatype::kLong, Op::kSum, w);
  ok = ok && totals[1] == keys_per_rank * static_cast<std::size_t>(n);
  // Checksum: global key sum is invariant under the exchange.
  std::uint64_t moved_sum = 0;
  for (auto k : mine) moved_sum += static_cast<std::uint64_t>(k);
  std::uint64_t moved_total = 0;
  mpi.allreduce(&moved_sum, &moved_total, 1, Datatype::kLong, Op::kSum, w);
  ok = ok && moved_total == totals[0];

  KernelResult res;
  res.name = "IS";
  res.verified = ok;
  res.checksum = moved_total;
  return res;
}

}  // namespace sp::nas
