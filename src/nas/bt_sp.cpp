// BT (block-tridiagonal ADI) and SP (scalar-pentadiagonal ADI) mini-kernels.
//
// Both iterate alternating-direction sweeps: the x-sweep is local, while the
// y-sweep needs the data transposed across ranks (pencil redistribution).
// BT moves larger blocks with moderate local work; SP does the same exchange
// but with substantially heavier per-point computation, so its communication
// fraction — and hence the benefit of a faster MPI — is smaller (matching the
// paper's observation that SP improved the least of the CFD trio).
#include <cmath>
#include <cstring>

#include "nas/kernels.hpp"

namespace sp::nas {

using mpi::Comm;
using mpi::Datatype;
using mpi::Mpi;
using mpi::Op;

namespace {

struct AdiParams {
  const char* name;
  std::size_t n_base;          ///< Base grid edge (scaled, rounded to ranks).
  int iters;
  sim::TimeNs sweep_ns_per_pt; ///< Local solve cost per point per direction.
};

void adi_transpose(Mpi& mpi, const Comm& w, std::vector<double>& a, std::size_t N) {
  const auto n = static_cast<std::size_t>(w.size());
  const std::size_t rl = N / n;
  std::vector<double> send(rl * N), recv(rl * N);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < rl; ++i) {
      std::memcpy(&send[r * rl * rl + i * rl], &a[i * N + r * rl], rl * sizeof(double));
    }
  }
  mpi.compute(static_cast<sim::TimeNs>(rl * N) * 5);
  mpi.alltoall(send.data(), rl * rl, recv.data(), Datatype::kDouble, w);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < rl; ++i) {
      for (std::size_t j = 0; j < rl; ++j) {
        a[j * N + r * rl + i] = recv[r * rl * rl + i * rl + j];
      }
    }
  }
  mpi.compute(static_cast<sim::TimeNs>(rl * N) * 5);
}

KernelResult run_adi(Mpi& mpi, int scale, const AdiParams& p) {
  Comm& w = mpi.world();
  const auto n = static_cast<std::size_t>(w.size());
  std::size_t N = p.n_base * static_cast<std::size_t>(scale);
  while (N % n != 0) ++N;
  const std::size_t rl = N / n;

  std::vector<double> a(rl * N);
  const std::size_t row0 = static_cast<std::size_t>(w.rank()) * rl;
  for (std::size_t i = 0; i < rl; ++i) {
    for (std::size_t j = 0; j < N; ++j) {
      a[i * N + j] = 1.0 + static_cast<double>(((row0 + i) * N + j) % 1009) / 1009.0;
    }
  }

  for (int it = 0; it < p.iters; ++it) {
    // x-sweep: forward/backward substitution along local rows.
    for (std::size_t i = 0; i < rl; ++i) {
      double* row = &a[i * N];
      for (std::size_t j = 1; j < N; ++j) row[j] -= 0.3 * row[j - 1];
      for (std::size_t j = N - 1; j > 0; --j) row[j - 1] -= 0.3 * row[j] * 0.5;
    }
    mpi.compute(static_cast<sim::TimeNs>(rl * N) * p.sweep_ns_per_pt);
    // y-sweep: transpose, solve (now-local) columns, transpose back.
    adi_transpose(mpi, w, a, N);
    for (std::size_t i = 0; i < rl; ++i) {
      double* row = &a[i * N];
      for (std::size_t j = 1; j < N; ++j) row[j] -= 0.3 * row[j - 1];
    }
    mpi.compute(static_cast<sim::TimeNs>(rl * N) * p.sweep_ns_per_pt);
    adi_transpose(mpi, w, a, N);
    // Dissipation keeps the values bounded.
    for (auto& v : a) v *= 0.5;
  }

  double local = 0.0;
  for (auto v : a) local += v;
  double total = 0.0;
  mpi.allreduce(&local, &total, 1, Datatype::kDouble, Op::kSum, w);

  KernelResult res;
  res.name = p.name;
  res.verified = std::isfinite(total);
  std::uint64_t bits;
  std::memcpy(&bits, &total, sizeof(double));
  res.checksum = bits;
  return res;
}

}  // namespace

KernelResult run_bt(Mpi& mpi, int scale) {
  return run_adi(mpi, scale, AdiParams{"BT", 64, 4, 260});
}

KernelResult run_sp(Mpi& mpi, int scale) {
  return run_adi(mpi, scale, AdiParams{"SP", 64, 4, 2000});
}

}  // namespace sp::nas
