#include "nas/kernels.hpp"

#include "sim/telemetry.hpp"

namespace sp::nas {

namespace {

// Wraps a kernel in telemetry begin/end records (a0 = kernel id; a1 = scale
// on begin, verified flag on end). Plain functions so KernelFn stays a raw
// function pointer.
template <KernelFn F, sim::NasKernel K>
KernelResult traced(mpi::Mpi& mpi, int scale) {
  sim::NodeRuntime& rt = mpi.node();
  SP_TELEM(rt, sim::Ev::kKernelBegin, static_cast<std::uint64_t>(K),
           static_cast<std::uint64_t>(scale));
  KernelResult res = F(mpi, scale);
  SP_TELEM(rt, sim::Ev::kKernelEnd, static_cast<std::uint64_t>(K),
           res.verified ? 1u : 0u);
  return res;
}

}  // namespace

std::vector<std::pair<std::string, KernelFn>> all_kernels() {
  using sim::NasKernel;
  return {
      {"LU", &traced<&run_lu, NasKernel::kLu>},
      {"IS", &traced<&run_is, NasKernel::kIs>},
      {"CG", &traced<&run_cg, NasKernel::kCg>},
      {"BT", &traced<&run_bt, NasKernel::kBt>},
      {"FT", &traced<&run_ft, NasKernel::kFt>},
      {"EP", &traced<&run_ep, NasKernel::kEp>},
      {"MG", &traced<&run_mg, NasKernel::kMg>},
      {"SP", &traced<&run_sp, NasKernel::kSp>},
  };
}

}  // namespace sp::nas
