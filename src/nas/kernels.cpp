#include "nas/kernels.hpp"

namespace sp::nas {

std::vector<std::pair<std::string, KernelFn>> all_kernels() {
  return {
      {"LU", &run_lu}, {"IS", &run_is}, {"CG", &run_cg}, {"BT", &run_bt},
      {"FT", &run_ft}, {"EP", &run_ep}, {"MG", &run_mg}, {"SP", &run_sp},
  };
}

}  // namespace sp::nas
