#include "pipes/pipes.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <utility>

namespace sp::pipes {

namespace {
/// Floor when re-arming the retransmit timer: an already-expired deadline
/// (e.g. a HAL-full retry) must not respin at the current instant.
constexpr sim::TimeNs kMinRetryDelayNs = 1'000;
}  // namespace

Pipes::Pipes(sim::NodeRuntime& node, hal::Hal& hal)
    : node_(node), hal_(hal) {
  hal_.register_protocol(hal::kProtoPipes,
                         [this](int src, std::span<const std::byte> b) { on_hal_packet(src, b); });
  // No global send-space sweep: each destination pipe arms a one-shot HAL
  // waiter when (and only when) it actually stalls on send-buffer pressure.
}

sim::TimeNs Pipes::copy_cost(std::size_t bytes) const {
  return node_.cfg.copy_call_ns +
         static_cast<sim::TimeNs>(
             std::llround(node_.cfg.copy_ns_per_byte * static_cast<double>(bytes)));
}

void Pipes::write(int dst, std::vector<std::byte> prefix, const std::byte* data, std::size_t len,
                  std::function<void()> on_reusable) {
  if (out_.size() <= static_cast<std::size_t>(dst)) out_.resize(static_cast<std::size_t>(dst) + 1);
  auto& op = out_[static_cast<std::size_t>(dst)];
  if (!op) op = std::make_unique<Out>();
  Out& o = *op;

  node_.cpu.charge(node_.sim, node_.cfg.pipe_call_overhead_ns);

  // Envelope span (owned, built by the caller).
  if (!prefix.empty()) {
    OutSpan env;
    env.len = prefix.size();
    env.owned = std::move(prefix);
    o.queue.push_back(std::move(env));
  }

  const std::size_t span = node_.cfg.pipe_copy_span_bytes;
  if (len <= 2 * span) {
    // Whole message goes through the pipe buffer: user -> pipe copy now.
    if (len > 0) {
      node_.cpu.charge(node_.sim, copy_cost(len));
      OutSpan s;
      s.owned.assign(data, data + len);
      s.len = len;
      s.double_copy = true;
      o.queue.push_back(std::move(s));
    }
    // User buffer already copied out: immediately reusable.
    if (on_reusable) on_reusable();
  } else {
    // Head and tail are pipe-buffered; the middle streams straight from the
    // user buffer to HAL (Snir et al.'s first/last-16 KiB rule).
    node_.cpu.charge(node_.sim, copy_cost(2 * span));
    OutSpan head;
    head.owned.assign(data, data + span);
    head.len = span;
    head.double_copy = true;

    OutSpan mid;
    mid.borrowed = data + span;
    mid.len = len - 2 * span;
    mid.on_done = std::move(on_reusable);  // safe once the middle is staged

    OutSpan tail;
    tail.owned.assign(data + len - span, data + len);
    tail.len = span;
    tail.double_copy = true;

    o.queue.push_back(std::move(head));
    o.queue.push_back(std::move(mid));
    o.queue.push_back(std::move(tail));
  }
  pump(dst);
}

void Pipes::pump(int dst) {
  auto& op = out_[static_cast<std::size_t>(dst)];
  if (!op) return;
  Out& o = *op;
  const auto window_pkts = static_cast<std::size_t>(node_.cfg.sliding_window_packets);
  while (!o.queue.empty() && o.store.size() < window_pkts &&
         o.next_off - o.acked_off < node_.cfg.pipe_buffer_bytes) {
    if (hal_.send_buffers_in_use() >= node_.cfg.hal_send_buffers) {
      // Stalled on HAL send buffers, not the window: arm a one-shot waiter.
      if (!o.waiting_for_space) {
        o.waiting_for_space = true;
        hal_.wait_send_space([this, dst] {
          out_[static_cast<std::size_t>(dst)]->waiting_for_space = false;
          pump(dst);
        });
      }
      return;
    }
    materialize_one(dst, o);
  }
}

void Pipes::materialize_one(int dst, Out& o) {
  // Fill one packet with up to MTU bytes, packing across span boundaries so
  // an envelope and a short payload share a packet (as the byte stream does).
  WireHdr h;
  h.stream_off = o.next_off;
  h.pkt_seq = o.next_seq++;
  h.kind = 0;

  std::vector<std::byte> payload = hal_.arena().acquire(sizeof(WireHdr));
  std::size_t data_bytes = 0;
  while (!o.queue.empty() && data_bytes < node_.cfg.packet_mtu) {
    OutSpan& s = o.queue.front();
    const std::size_t room = node_.cfg.packet_mtu - data_bytes;
    const std::size_t left = s.len - o.span_next;
    const std::size_t chunk = left < room ? left : room;
    const std::byte* src = (s.borrowed != nullptr ? s.borrowed : s.owned.data()) + o.span_next;
    payload.insert(payload.end(), src, src + chunk);
    data_bytes += chunk;
    o.span_next += chunk;
    if (o.span_next >= s.len) {
      auto done = std::move(s.on_done);
      o.queue.pop_front();
      o.span_next = 0;
      if (done) done();
    }
  }
  assert(data_bytes > 0);
  h.data_len = static_cast<std::uint32_t>(data_bytes);
  std::memcpy(payload.data(), &h, sizeof(WireHdr));

  // The pipe/user -> HAL copy plus per-packet bookkeeping.
  node_.cpu.charge(node_.sim, copy_cost(data_bytes) + node_.cfg.pipe_packet_ns);

  const std::size_t modeled = node_.cfg.pipe_header_bytes + data_bytes;
  const bool sent = hal_.send_packet(dst, hal::kProtoPipes, payload, modeled);
  assert(sent && "pump() checked for HAL space");
  (void)sent;
  ++packets_sent_;
  SP_TELEM(node_, sim::Ev::kPipeSend, static_cast<std::uint64_t>(dst), data_bytes);

  o.store.emplace(h.stream_off,
                  Stored{std::move(payload), modeled, h.stream_off + data_bytes, node_.sim.now()});
  o.next_off += data_bytes;
  schedule_retransmit(dst);
}

void Pipes::on_hal_packet(int src, std::span<const std::byte> bytes) {
  assert(bytes.size() >= sizeof(WireHdr));
  WireHdr h;
  std::memcpy(&h, bytes.data(), sizeof(WireHdr));

  if (h.kind == 1) {
    // Ack: release stored packets and make progress.
    node_.cpu.charge(node_.sim, node_.cfg.ack_processing_ns);
    if (out_.size() <= static_cast<std::size_t>(src) || !out_[static_cast<std::size_t>(src)]) return;
    Out& o = *out_[static_cast<std::size_t>(src)];
    if (h.ack_off > o.acked_off) o.acked_off = h.ack_off;
    while (!o.store.empty() && o.store.begin()->second.end_off <= o.acked_off) {
      hal_.arena().release(std::move(o.store.begin()->second.payload));
      o.store.erase(o.store.begin());
    }
    pump(src);
    return;
  }

  if (in_.size() <= static_cast<std::size_t>(src)) in_.resize(static_cast<std::size_t>(src) + 1);
  auto& ip = in_[static_cast<std::size_t>(src)];
  if (!ip) ip = std::make_unique<In>();
  In& i = *ip;

  node_.cpu.charge(node_.sim, node_.cfg.pipe_packet_ns);
  const std::uint64_t off = h.stream_off;
  const std::size_t len = h.data_len;

  if (off + len <= i.delivered_off || i.reorder.count(off) != 0) {
    // Duplicate (retransmission raced the ack): re-advertise our position,
    // coalesced to one immediate re-ack per burst (the rest fold into the
    // delayed flush) so a go-back-N train does not trigger an ack storm.
    ++duplicates_;
    SP_TELEM(node_, sim::Ev::kPipeDupRecv, static_cast<std::uint64_t>(src), off);
    i.ack_pending = true;
    // debug_disable_reack_coalescing re-introduces the PR 2 ack storm for the
    // conformance explorer's self-test; it must never be set otherwise.
    if (node_.cfg.debug_disable_reack_coalescing ||
        node_.sim.now() - i.last_reack_at >= node_.cfg.ack_delay_ns) {
      i.last_reack_at = node_.sim.now();
      send_ack(src);
    } else {
      ++reacks_coalesced_;
      schedule_ack_flush(src);
    }
    return;
  }

  // HAL buffer -> pipe buffer copy (always paid by the native stack). The
  // modeled copy is the same either way; on the host side, in-order packets
  // go straight from the receive frame into the stream buffer, and only
  // out-of-order ones need their own parking allocation.
  node_.cpu.charge(node_.sim, copy_cost(len));
  const std::byte* body = bytes.data() + sizeof(WireHdr);

  if (off == i.delivered_off) {
    i.rx.insert(i.rx.end(), body, body + len);
    i.delivered_off += len;
    // Drain any reorder-buffer chunks that are now contiguous.
    auto it = i.reorder.begin();
    while (it != i.reorder.end() && it->first == i.delivered_off) {
      i.rx.insert(i.rx.end(), it->second.begin(), it->second.end());
      i.delivered_off += it->second.size();
      it = i.reorder.erase(it);
    }
  } else {
    // Out-of-order: park until the gap fills (ordering enforcement, §2).
    i.reorder.emplace(off, std::vector<std::byte>(body, body + len));
  }

  SP_TELEM(node_, sim::Ev::kPipeDeliver, static_cast<std::uint64_t>(src), len);
  ++i.unacked_packets;
  i.ack_pending = true;
  if (i.unacked_packets >= node_.cfg.ack_every_packets) {
    send_ack(src);
  } else {
    schedule_ack_flush(src);
  }
  if (on_data_ && available(src) > 0) on_data_(src);
}

void Pipes::send_ack(int src) {
  In& i = *in_[static_cast<std::size_t>(src)];
  WireHdr h;
  h.kind = 1;
  h.ack_off = i.delivered_off;
  std::vector<std::byte> payload(sizeof(WireHdr));
  std::memcpy(payload.data(), &h, sizeof(WireHdr));
  node_.cpu.charge(node_.sim, node_.cfg.ack_processing_ns);
  if (hal_.send_packet(src, hal::kProtoPipes, std::move(payload), node_.cfg.pipe_header_bytes)) {
    i.unacked_packets = 0;
    i.ack_pending = false;
    i.acked_off = i.delivered_off;
    ++acks_sent_;
    SP_TELEM(node_, sim::Ev::kPipeAck, static_cast<std::uint64_t>(src), i.delivered_off);
  } else {
    // HAL full: the ack stays owed. ack_pending (not unacked_packets) records
    // the debt so a duplicate re-ack is retried too, instead of leaving the
    // sender stuck on its retransmit timer.
    i.ack_pending = true;
    schedule_ack_flush(src);
  }
}

void Pipes::schedule_ack_flush(int src) {
  In& i = *in_[static_cast<std::size_t>(src)];
  if (i.ack_flush_scheduled) return;
  i.ack_flush_scheduled = true;
  node_.sim.after(node_.cfg.ack_delay_ns, sim::sched_node_key(node_.node), [this, src] {
    In& in = *in_[static_cast<std::size_t>(src)];
    in.ack_flush_scheduled = false;
    if (in.ack_pending) send_ack(src);
  });
}

void Pipes::schedule_retransmit(int dst) {
  Out& o = *out_[static_cast<std::size_t>(dst)];
  if (o.retransmit_scheduled || o.store.empty()) return;
  o.retransmit_scheduled = true;
  // Fire when the *oldest* unacked packet reaches its timeout rather than a
  // full timeout from now (which could let a loss linger for up to 2x the
  // timeout). The floor keeps a HAL-full retry from spinning at one instant.
  const sim::TimeNs deadline =
      o.store.begin()->second.sent_at + node_.cfg.retransmit_timeout_ns;
  sim::TimeNs delay = deadline - node_.sim.now();
  if (delay < kMinRetryDelayNs) delay = kMinRetryDelayNs;
  node_.sim.after(delay, sim::sched_node_key(node_.node), [this, dst] {
    Out& o2 = *out_[static_cast<std::size_t>(dst)];
    o2.retransmit_scheduled = false;
    if (o2.store.empty()) return;
    const sim::TimeNs age = node_.sim.now() - o2.store.begin()->second.sent_at;
    if (age >= node_.cfg.retransmit_timeout_ns) {
      for (auto& [off, s] : o2.store) {
        if (hal_.send_packet(dst, hal::kProtoPipes, s.payload, s.modeled)) {
          s.sent_at = node_.sim.now();
          ++retransmits_;
          SP_TELEM(node_, sim::Ev::kPipeRetransmit, static_cast<std::uint64_t>(dst), off);
        } else {
          break;
        }
      }
    }
    schedule_retransmit(dst);
  });
}

std::size_t Pipes::available(int src) const {
  if (in_.size() <= static_cast<std::size_t>(src) || !in_[static_cast<std::size_t>(src)]) return 0;
  return in_[static_cast<std::size_t>(src)]->rx.size();
}

void Pipes::consume(int src, std::byte* out, std::size_t n) {
  In& i = *in_[static_cast<std::size_t>(src)];
  assert(i.rx.size() >= n);
  // Pipe buffer -> destination copy (user buffer or early-arrival buffer).
  node_.cpu.charge(node_.sim, copy_cost(n));
  std::copy(i.rx.begin(), i.rx.begin() + static_cast<std::ptrdiff_t>(n), out);
  i.rx.erase(i.rx.begin(), i.rx.begin() + static_cast<std::ptrdiff_t>(n));
}

}  // namespace sp::pipes
