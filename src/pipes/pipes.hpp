// Pipes: the native MPI stack's reliable byte-stream layer (§2 of the paper).
//
// One logical pipe per destination provides an *ordered* reliable byte
// stream: a sliding-window protocol with cumulative acks and go-back-N
// retransmission; out-of-order packets (the switch has four routes per node
// pair) are held in a reorder buffer and delivered to the reader strictly in
// stream order.
//
// Copy accounting — the heart of the paper's argument:
//   send:    the first and last `pipe_copy_span_bytes` (16 KiB) of a message
//            are copied user buffer -> pipe buffer at write() time, then pipe
//            buffer -> HAL per packet (two copies); the middle of larger
//            messages is fed to HAL directly from the user buffer (one copy).
//   receive: every arriving packet is copied HAL buffer -> pipe buffer, and
//            the reader's consume() copies pipe buffer -> destination (user
//            or early-arrival buffer): always two copies.
// The LAPI stack replaces this layer and pays exactly one copy per side.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "hal/hal.hpp"
#include "sim/node_runtime.hpp"

namespace sp::pipes {

class Pipes {
 public:
  Pipes(sim::NodeRuntime& node, hal::Hal& hal);

  Pipes(const Pipes&) = delete;
  Pipes& operator=(const Pipes&) = delete;

  /// Write one framed message to the stream toward `dst`: `prefix` (owned;
  /// typically the MPCI envelope) followed by `len` bytes at `data`
  /// (borrowed; must stay valid until `on_reusable` fires). `on_reusable`
  /// fires when the user buffer may be modified again.
  void write(int dst, std::vector<std::byte> prefix, const std::byte* data, std::size_t len,
             std::function<void()> on_reusable);

  /// Bytes currently readable, in order, from `src`.
  [[nodiscard]] std::size_t available(int src) const;

  /// Consume `n` bytes from the `src` stream into `out` (the pipe->user /
  /// pipe->early-arrival copy is charged). Precondition: n <= available(src).
  void consume(int src, std::byte* out, std::size_t n);

  /// Callback invoked (in event context) when new in-order bytes become
  /// readable from `src`.
  void set_on_data(std::function<void(int src)> fn) { on_data_ = std::move(fn); }

  [[nodiscard]] std::int64_t retransmits() const noexcept { return retransmits_; }
  [[nodiscard]] std::int64_t packets_sent() const noexcept { return packets_sent_; }
  /// Duplicate packet deliveries filtered out (fabric dups + go-back-N
  /// re-deliveries).
  [[nodiscard]] std::int64_t duplicate_deliveries() const noexcept { return duplicates_; }
  [[nodiscard]] std::int64_t acks_sent() const noexcept { return acks_sent_; }
  /// Duplicate deliveries folded into the delayed ack flush instead of each
  /// earning an immediate re-ack (the PR 2 coalescing fix at work).
  [[nodiscard]] std::int64_t reacks_coalesced() const noexcept { return reacks_coalesced_; }

 private:
  struct WireHdr {
    std::uint64_t stream_off = 0;
    std::uint32_t pkt_seq = 0;
    std::uint32_t data_len = 0;
    std::uint8_t kind = 0;  // 0 = data, 1 = ack
    std::uint8_t pad[7] = {};
    std::uint64_t ack_off = 0;  // cumulative in-order bytes received
  };

  /// A span of one written message queued for transmission.
  struct OutSpan {
    std::vector<std::byte> owned;        ///< Pipe-buffered bytes (prefix/head/tail).
    const std::byte* borrowed = nullptr; ///< Direct-from-user middle span.
    std::size_t len = 0;
    bool double_copy = false;            ///< True if this span went through the pipe buffer.
    std::function<void()> on_done;       ///< Fires when the span is fully staged.
  };

  struct Stored {
    std::vector<std::byte> payload;
    std::size_t modeled = 0;
    std::uint64_t end_off = 0;
    sim::TimeNs sent_at = 0;
  };

  struct Out {
    std::deque<OutSpan> queue;
    std::size_t span_next = 0;           ///< Bytes of the front span already staged.
    std::uint64_t next_off = 0;          ///< Next stream byte offset to send.
    std::uint64_t acked_off = 0;         ///< Cumulatively acknowledged bytes.
    std::uint32_t next_seq = 1;
    std::map<std::uint64_t, Stored> store;  ///< Unacked packets keyed by stream_off.
    bool retransmit_scheduled = false;
    bool waiting_for_space = false;      ///< A one-shot HAL space waiter is armed.
  };

  struct In {
    std::uint64_t delivered_off = 0;     ///< Bytes delivered to rx in order.
    std::map<std::uint64_t, std::vector<std::byte>> reorder;  // stream_off -> bytes
    std::deque<std::byte> rx;            ///< In-order readable bytes.
    std::uint64_t acked_off = 0;
    int unacked_packets = 0;             ///< Fresh packets since the last ack.
    bool ack_pending = false;            ///< An ack send is owed (data or dup re-ack).
    bool ack_flush_scheduled = false;
    /// Last immediate duplicate re-ack; later duplicates within ack_delay_ns
    /// coalesce into the flush (go-back-N bursts must not ack-storm).
    sim::TimeNs last_reack_at = -(1LL << 62);
  };

  void pump(int dst);
  void materialize_one(int dst, Out& o);
  void on_hal_packet(int src, std::span<const std::byte> bytes);
  void send_ack(int src);
  void schedule_ack_flush(int src);
  void schedule_retransmit(int dst);
  [[nodiscard]] sim::TimeNs copy_cost(std::size_t bytes) const;

  sim::NodeRuntime& node_;
  hal::Hal& hal_;
  std::vector<std::unique_ptr<Out>> out_;
  std::vector<std::unique_ptr<In>> in_;
  std::function<void(int)> on_data_;

  std::int64_t retransmits_ = 0;
  std::int64_t packets_sent_ = 0;
  std::int64_t duplicates_ = 0;
  std::int64_t acks_sent_ = 0;
  std::int64_t reacks_coalesced_ = 0;
};

}  // namespace sp::pipes
