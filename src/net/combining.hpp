// In-network combining collectives (DESIGN.md §16).
//
// The paper's LAPI-enhanced collectives — and even the PR 7 NIC-offloaded
// ones — pay per-hop host/adapter latency on every reduction step. The next
// rung (the NYU-Ultracomputer line, and modern SHArP-style switch reduction)
// moves the combine into the switch elements themselves: each element holds a
// combining-table entry per in-flight collective, folds its children's
// contributions, and forwards one partial up; the top element replicates the
// result down every subtree at once.
//
// Determinism is the hard part and the design rule here is simple: an element
// NEVER folds on arrival. It stashes each child's contribution in a
// fixed child-port slot and combines only when all expected children are
// present, always left-to-right in child-port order. Child ports cover
// contiguous communicator-rank ranges, so the fold is exactly the sequential
// rank-order reduction (v0 op v1 op ... op v_{n-1}, regrouped only by
// associativity) no matter which packet arrived first — bit-identical across
// schedules, channels and topologies, including for the non-commutative
// Op::kMat2x2 workloads the property tests pin.
//
// Fault interaction: hop transfers draw drop/duplicate/jitter from a
// dedicated seeded Pcg32 stream (fixed draw order: drop, jitter, dup — the
// user fabric's stream is untouched, so adding loss never perturbs a clean
// run's packet schedule). A dropped transfer is retransmitted after
// innet_retry_ns; a duplicated one delivers twice and the element's
// seen-flag discards the second copy, so combining state can never
// double-combine (counted in dup_discards()).
//
// The engine lives beside the SwitchFabric (one per machine) and is wired
// into every channel's Mpi by the Machine — unlike the NIC offload it is a
// property of the interconnect, not of one adapter type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/telemetry.hpp"

namespace sp::net {

class CombiningEngine {
 public:
  /// Rank-order combine: fold `from` (the higher-rank operand) into `into`.
  using Combine = std::function<void(std::byte* into, const std::byte* from, std::size_t len)>;

  /// One rank's share of one collective. Every member of (ctx, seq) must post
  /// the same shape (nranks, len, root, reduce_phase); `seq` is the per-call
  /// collective tag, identical across the communicator by the tag discipline.
  struct Op {
    std::uint32_t ctx = 0;
    std::uint32_t seq = 0;
    int rank = 0;                ///< Caller's communicator rank.
    int root = 0;                ///< Bcast root (ignored for reduce_phase).
    std::vector<int> tasks;      ///< Comm members as world task ids, rank order.
    std::byte* buf = nullptr;    ///< Contribution in, result out (len bytes).
    std::size_t len = 0;
    bool reduce_phase = true;    ///< true: allreduce/barrier; false: bcast.
    Combine combine;             ///< Null for barrier/bcast (pure replication).
    std::function<void()> on_done;  ///< Invoked in event context at completion.
  };

  CombiningEngine(sim::Simulator& sim, const sim::MachineConfig& cfg, const Topology& topo);

  void set_telemetry(sim::Telemetry* t) noexcept { telemetry_ = t; }

  /// Post one rank's share. Completion (`on_done`) always arrives via a
  /// scheduled event, never synchronously.
  void start(Op&& op);

  /// Switch radix the combining tree uses on this topology (the element
  /// down-arity: SP/fat-tree leaf arity, torus quadrant, dragonfly router).
  [[nodiscard]] int radix() const noexcept { return radix_; }
  [[nodiscard]] sim::TopologyKind topology_kind() const noexcept { return topo_.kind(); }

  // --- statistics ----------------------------------------------------------
  /// Completed collectives.
  [[nodiscard]] std::int64_t ops() const noexcept { return ops_; }
  /// Element-level child folds (combine hits).
  [[nodiscard]] std::int64_t combines() const noexcept { return combines_; }
  /// Downward replication deliveries (total fan-out).
  [[nodiscard]] std::int64_t replications() const noexcept { return replications_; }
  /// Duplicate contributions discarded by an element's seen-flag.
  [[nodiscard]] std::int64_t dup_discards() const noexcept { return dup_discards_; }
  /// Hop transfers retransmitted after an injected drop.
  [[nodiscard]] std::int64_t retransmits() const noexcept { return retransmits_; }
  /// Peak concurrent combining-table entries (elements with live state).
  [[nodiscard]] std::int64_t table_peak() const noexcept { return table_peak_; }
  /// Live combining-table entries right now.
  [[nodiscard]] std::int64_t table_occupancy() const noexcept { return table_live_; }

 private:
  struct Element {
    int nchildren = 0;
    int seen = 0;
    bool forwarded = false;
    /// Fixed child-port stash, one slot per child, folded left-to-right only
    /// once every slot is filled (the determinism invariant).
    std::vector<bool> present;
    std::vector<std::vector<std::byte>> stash;
  };

  struct RankSlot {
    bool registered = false;
    bool delivered = false;
    std::byte* buf = nullptr;
    std::function<void()> on_done;
  };

  struct Instance {
    int nranks = 0;
    int root = 0;
    std::size_t len = 0;
    bool reduce_phase = true;
    Combine combine;
    std::vector<int> tasks;
    /// levels[0] = leaf elements over ranks; last level has one element.
    std::vector<std::vector<Element>> levels;
    std::vector<RankSlot> ranks;
    std::vector<std::byte> result;
    bool result_ready = false;
    int delivered = 0;
  };

  using Key = std::uint64_t;
  static constexpr Key key(std::uint32_t ctx, std::uint32_t seq) noexcept {
    return (static_cast<Key>(ctx) << 32) | seq;
  }

  Instance& open(Key k, const Op& op);
  void contribute(Key k, int level, int elem, int slot,
                  std::shared_ptr<std::vector<std::byte>> data);
  void element_complete(Key k, int level, int elem);
  void root_done(Key k, std::vector<std::byte>&& result);
  void deliver(Key k, int rank);
  void finish(Key k, int rank);
  void retire(Key k, Instance& inst);

  /// Schedule `fn` after `delay`, drawing drop/jitter/dup faults from the
  /// engine's private stream (fixed order; no draws when the rates are 0).
  void transfer(sim::TimeNs delay, std::function<void()> fn);

  [[nodiscard]] sim::TimeNs wire_ns(std::size_t bytes) const noexcept;
  [[nodiscard]] sim::TimeNs fold_ns(int children, std::size_t bytes) const noexcept;
  [[nodiscard]] int up_depth(const Instance& inst) const noexcept {
    return static_cast<int>(inst.levels.size());
  }
  void note_table(std::int64_t delta) noexcept;

  sim::Simulator& sim_;
  const sim::MachineConfig& cfg_;
  const Topology& topo_;
  int radix_;
  std::map<Key, Instance> table_;
  sim::Pcg32 rng_;
  sim::Telemetry* telemetry_ = nullptr;

  std::int64_t ops_ = 0;
  std::int64_t combines_ = 0;
  std::int64_t replications_ = 0;
  std::int64_t dup_discards_ = 0;
  std::int64_t retransmits_ = 0;
  std::int64_t table_live_ = 0;
  std::int64_t table_peak_ = 0;
};

}  // namespace sp::net
