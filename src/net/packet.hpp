// Wire packet exchanged through the simulated SP switch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sp::net {

/// Recycler for frame/payload buffers on the host-side hot path. A machine
/// moves millions of packets whose frames would otherwise each be a heap
/// allocation; the arena keeps released buffers (capacity intact) on a free
/// list and hands them back zero-filled to `n` bytes. Purely a host-side
/// optimization: simulated time is never charged here.
class FrameArena {
 public:
  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  /// Get a buffer of `n` zero bytes (recycled capacity when available).
  [[nodiscard]] std::vector<std::byte> acquire(std::size_t n) {
    if (!free_.empty()) {
      std::vector<std::byte> f = std::move(free_.back());
      free_.pop_back();
      f.resize(n);  // buffers are released cleared, so this zero-fills
      ++recycled_;
      return f;
    }
    ++fresh_;
    return std::vector<std::byte>(n);
  }

  /// Return a buffer for reuse. Beyond the cache bound it is simply freed.
  void release(std::vector<std::byte>&& f) {
    if (free_.size() >= kMaxCached || f.capacity() == 0) return;
    f.clear();
    free_.push_back(std::move(f));
  }

  /// Buffers served from the free list (vs freshly allocated).
  [[nodiscard]] std::uint64_t recycled() const noexcept { return recycled_; }
  [[nodiscard]] std::uint64_t fresh() const noexcept { return fresh_; }

 private:
  static constexpr std::size_t kMaxCached = 4096;

  std::vector<std::vector<std::byte>> free_;
  std::uint64_t recycled_ = 0;
  std::uint64_t fresh_ = 0;
};

struct Packet {
  int src = 0;  ///< Source node id.
  int dst = 0;  ///< Destination node id.
  /// Serialized frame: HAL header followed by upper-layer header + payload.
  /// Real bytes travel so receivers can verify integrity and reassemble.
  /// Acquired from the machine's FrameArena and released after delivery.
  std::vector<std::byte> frame;
  /// Route (spine index) the fabric chose; filled in by the fabric.
  int route = -1;
  /// Modeled size on the wire. The in-memory frame may differ slightly from
  /// the modeled protocol header sizes (we serialize full structs for
  /// fidelity of the *data*, while time is charged for the *modeled* bytes);
  /// the fabric and adapters charge this value. 0 means "use frame.size()".
  std::size_t modeled_bytes = 0;

  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    return modeled_bytes != 0 ? modeled_bytes : frame.size();
  }
};

}  // namespace sp::net
