// Wire packet exchanged through the simulated SP switch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sp::net {

struct Packet {
  int src = 0;  ///< Source node id.
  int dst = 0;  ///< Destination node id.
  /// Serialized frame: HAL header followed by upper-layer header + payload.
  /// Real bytes travel so receivers can verify integrity and reassemble.
  std::vector<std::byte> frame;
  /// Route (spine index) the fabric chose; filled in by the fabric.
  int route = -1;
  /// Modeled size on the wire. The in-memory frame may differ slightly from
  /// the modeled protocol header sizes (we serialize full structs for
  /// fidelity of the *data*, while time is charged for the *modeled* bytes);
  /// the fabric and adapters charge this value. 0 means "use frame.size()".
  std::size_t modeled_bytes = 0;

  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    return modeled_bytes != 0 ? modeled_bytes : frame.size();
  }
};

}  // namespace sp::net
