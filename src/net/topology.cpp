#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sp::net {
namespace {

using sim::TopologyKind;

// ---------------------------------------------------------------------------
// SP multistage crossbar — the paper's switch, kept bit-exact with the
// pre-topology fabric: every pair (same-leaf included) takes exactly
//   node -> leaf(src) -> spine(r) -> leaf(dst) -> node
// and has `num_routes` routes. Link id layout mirrors the old per-array
// indexing so the busy-until schedule (and therefore every golden digest)
// is unchanged:
//   [0, N)                node -> leaf            (node_up)
//   [N, N+L*R)            leaf l -> spine r       (leaf_up,  l*R + r)
//   [N+L*R, N+2*L*R)      spine r -> leaf l       (leaf_down, l*R + r)
//   [N+2*L*R, 2*N+2*L*R)  leaf -> node            (node_down)
// ---------------------------------------------------------------------------
class SpMultistage final : public Topology {
 public:
  SpMultistage(int num_nodes, int num_routes)
      : n_(num_nodes), leaves_((num_nodes + 3) / 4), routes_(num_routes) {}

  [[nodiscard]] const char* name() const noexcept override { return "sp"; }
  [[nodiscard]] TopologyKind kind() const noexcept override {
    return TopologyKind::kSpMultistage;
  }
  [[nodiscard]] int num_nodes() const noexcept override { return n_; }
  [[nodiscard]] int num_links() const noexcept override {
    return 2 * n_ + 2 * leaves_ * routes_;
  }
  [[nodiscard]] int num_vertices() const noexcept override { return n_ + leaves_ + routes_; }

  [[nodiscard]] LinkEnds link_ends(std::uint32_t id) const override {
    const int lr = leaves_ * routes_;
    const int i = static_cast<int>(id);
    if (i < n_) return {i, n_ + i / 4};                             // node_up
    if (i < n_ + lr) {                                             // leaf_up
      const int k = i - n_;
      return {n_ + k / routes_, n_ + leaves_ + k % routes_};
    }
    if (i < n_ + 2 * lr) {                                         // leaf_down
      const int k = i - n_ - lr;
      return {n_ + leaves_ + k % routes_, n_ + k / routes_};
    }
    const int node = i - n_ - 2 * lr;                              // node_down
    return {n_ + node / 4, node};
  }

  [[nodiscard]] int route_count(int, int) const override { return routes_; }

  void route(int src, int dst, int r, RouteBuf& out) const override {
    const int lr = leaves_ * routes_;
    out.n = 4;
    out.hops[0] = {static_cast<std::uint32_t>(src), kLinkHost};
    out.hops[1] = {static_cast<std::uint32_t>(n_ + (src / 4) * routes_ + r), kLinkLocal};
    out.hops[2] = {static_cast<std::uint32_t>(n_ + lr + (dst / 4) * routes_ + r), kLinkLocal};
    out.hops[3] = {static_cast<std::uint32_t>(n_ + 2 * lr + dst), kLinkHost};
  }

 private:
  int n_;
  int leaves_;
  int routes_;
};

// ---------------------------------------------------------------------------
// Fat-tree (folded Clos), 2 or 3 levels, after SimGrid's FatTreeZone
// parameterization: down[l] children and up[l] parent ports per level, with
// up-link multiplicity mult[l].
//
// 2-level: leaves hold down0 nodes; every leaf connects to each of the
//   up0 spine switches with mult0 parallel links. Inter-leaf routes =
//   up0 * mult0 (choice of spine and parallel link); same-leaf pairs turn
//   around at the leaf (1 route, 2 hops).
// 3-level: a pod is down1 leaves + up0 aggregation switches (leaf connects to
//   every agg in its pod, mult0 links each); agg j of every pod connects to
//   cores [j*up1, (j+1)*up1) with mult1 links each, so cores = up0 * up1.
//   Cross-pod routes = up0*mult0 * up1*mult1; same-pod = up0*mult0.
// ---------------------------------------------------------------------------
class FatTree final : public Topology {
 public:
  FatTree(int num_nodes, int levels, const std::array<int, 2>& down,
          const std::array<int, 2>& up, const std::array<int, 2>& mult)
      : n_(num_nodes), levels_(levels), d0_(down[0]), d1_(down[1]), u0_(up[0]), u1_(up[1]),
        m0_(mult[0]), m1_(mult[1]) {
    assert(levels_ == 2 || levels_ == 3);
    leaves_ = (n_ + d0_ - 1) / d0_;
    if (levels_ == 2) {
      pods_ = 1;
      aggs_ = 0;
      cores_ = u0_;  // the "spine" row
    } else {
      pods_ = (leaves_ + d1_ - 1) / d1_;
      aggs_ = pods_ * u0_;
      cores_ = u0_ * u1_;
    }
    // Directed link id layout (each block one direction):
    //   node_up    [0, n)
    //   node_down  [n, 2n)
    //   leaf_up    leaf l, parent p in [0,P), copy m: 2n + (l*P + p)*m0 + m
    //   leaf_down  same shape, offset by leaves*P*m0
    //   agg_up     (3-level only) agg a, k in [0,u1), copy m
    //   agg_down   same shape
    leaf_parents_ = levels_ == 2 ? cores_ : u0_;
    leaf_up0_ = 2 * n_;
    leaf_down0_ = leaf_up0_ + leaves_ * leaf_parents_ * m0_;
    agg_up0_ = leaf_down0_ + leaves_ * leaf_parents_ * m0_;
    agg_down0_ = agg_up0_ + aggs_ * u1_ * m1_;
    total_links_ = agg_down0_ + aggs_ * u1_ * m1_;
  }

  [[nodiscard]] const char* name() const noexcept override { return "fattree"; }
  [[nodiscard]] TopologyKind kind() const noexcept override { return TopologyKind::kFatTree; }
  [[nodiscard]] int num_nodes() const noexcept override { return n_; }
  [[nodiscard]] int num_links() const noexcept override { return total_links_; }
  [[nodiscard]] int num_vertices() const noexcept override {
    return n_ + leaves_ + aggs_ + cores_;
  }

  [[nodiscard]] LinkEnds link_ends(std::uint32_t id) const override {
    const int i = static_cast<int>(id);
    const int leaf_v = n_;          // leaf vertex base
    const int agg_v = n_ + leaves_;
    const int core_v = agg_v + aggs_;
    if (i < n_) return {i, leaf_v + i / d0_};
    if (i < 2 * n_) return {leaf_v + (i - n_) / d0_, i - n_};
    if (i < leaf_down0_) {
      const int k = (i - leaf_up0_) / m0_;
      const int l = k / leaf_parents_;
      const int p = k % leaf_parents_;
      // 2-level: parent p is core p. 3-level: parent p is agg p of l's pod.
      const int parent = levels_ == 2 ? core_v + p : agg_v + (l / d1_) * u0_ + p;
      return {leaf_v + l, parent};
    }
    if (i < agg_up0_) {
      const int k = (i - leaf_down0_) / m0_;
      const int l = k / leaf_parents_;
      const int p = k % leaf_parents_;
      const int parent = levels_ == 2 ? core_v + p : agg_v + (l / d1_) * u0_ + p;
      return {parent, leaf_v + l};
    }
    if (i < agg_down0_) {
      const int k = (i - agg_up0_) / m1_;
      const int a = k / u1_;
      const int c = (a % u0_) * u1_ + k % u1_;
      return {agg_v + a, core_v + c};
    }
    const int k = (i - agg_down0_) / m1_;
    const int a = k / u1_;
    const int c = (a % u0_) * u1_ + k % u1_;
    return {core_v + c, agg_v + a};
  }

  [[nodiscard]] int route_count(int src, int dst) const override {
    const int ls = src / d0_;
    const int ld = dst / d0_;
    if (ls == ld) return 1;
    if (levels_ == 2 || ls / d1_ == ld / d1_) return leaf_parents_ == 0 ? 1 : u0_ * m0_;
    return u0_ * m0_ * u1_ * m1_;
  }

  void route(int src, int dst, int r, RouteBuf& out) const override {
    const int ls = src / d0_;
    const int ld = dst / d0_;
    int n = 0;
    out.hops[n++] = {static_cast<std::uint32_t>(src), kLinkHost};
    if (ls != ld) {
      // Up-choice at the leaf level: (parent p0, copy c0).
      const int up0 = r % (u0_ * m0_);
      const int p0 = up0 / m0_;
      const int c0 = up0 % m0_;
      if (levels_ == 2 || ls / d1_ == ld / d1_) {
        // Turn around at the spine (2-level) / pod agg (3-level, same pod).
        const int pa = levels_ == 2 ? p0 : p0;  // parent index within leaf_parents_
        out.hops[n++] = {link_leaf_up(ls, pa, c0), kLinkLocal};
        out.hops[n++] = {link_leaf_down(ld, pa, c0), kLinkLocal};
      } else {
        // Cross-pod: leaf -> agg p0 -> core (p0's k-th) -> agg p0 of dst pod.
        const int up1 = (r / (u0_ * m0_)) % (u1_ * m1_);
        const int k1 = up1 / m1_;
        const int c1 = up1 % m1_;
        const int agg_s = (ls / d1_) * u0_ + p0;
        const int agg_d = (ld / d1_) * u0_ + p0;  // same column reaches the same cores
        out.hops[n++] = {link_leaf_up(ls, p0, c0), kLinkLocal};
        out.hops[n++] = {link_agg_up(agg_s, k1, c1), kLinkGlobal};
        out.hops[n++] = {link_agg_down(agg_d, k1, c1), kLinkGlobal};
        out.hops[n++] = {link_leaf_down(ld, p0, c0), kLinkLocal};
      }
    }
    out.hops[n++] = {static_cast<std::uint32_t>(n_ + dst), kLinkHost};
    out.n = n;
  }

 private:
  [[nodiscard]] std::uint32_t link_leaf_up(int leaf, int p, int copy) const {
    return static_cast<std::uint32_t>(leaf_up0_ + (leaf * leaf_parents_ + p) * m0_ + copy);
  }
  [[nodiscard]] std::uint32_t link_leaf_down(int leaf, int p, int copy) const {
    return static_cast<std::uint32_t>(leaf_down0_ + (leaf * leaf_parents_ + p) * m0_ + copy);
  }
  [[nodiscard]] std::uint32_t link_agg_up(int agg, int k, int copy) const {
    return static_cast<std::uint32_t>(agg_up0_ + (agg * u1_ + k) * m1_ + copy);
  }
  [[nodiscard]] std::uint32_t link_agg_down(int agg, int k, int copy) const {
    return static_cast<std::uint32_t>(agg_down0_ + (agg * u1_ + k) * m1_ + copy);
  }

  int n_, levels_, d0_, d1_, u0_, u1_, m0_, m1_;
  int leaves_ = 0, pods_ = 0, aggs_ = 0, cores_ = 0;
  int leaf_parents_ = 0;
  int leaf_up0_ = 0, leaf_down0_ = 0, agg_up0_ = 0, agg_down0_ = 0, total_links_ = 0;
};

// ---------------------------------------------------------------------------
// 2-D / 3-D torus. Every node is its own router; directed neighbor links are
// laid out as link id = (node * kDirs + dir), dir in {+x,-x,+y,-y,+z,-z}.
// Minimal dimension-order routing; the route index selects one of the
// distinct dimension traversal orders (2 in 2-D, 6 in 3-D), so the spray
// spreads a pair's packets over edge-disjoint intermediate paths. Each hop
// takes the shorter wrap direction (ties go positive, deterministically).
// ---------------------------------------------------------------------------
class Torus final : public Topology {
 public:
  Torus(int num_nodes, int dx, int dy, int dz, bool three_d)
      : n_(num_nodes), dx_(dx), dy_(dy), dz_(dz), three_d_(three_d) {
    assert(dx_ * dy_ * dz_ == n_);
    dims_[0] = dx_;
    dims_[1] = dy_;
    dims_[2] = dz_;
    ndims_ = three_d_ ? 3 : 2;
  }

  [[nodiscard]] const char* name() const noexcept override {
    return three_d_ ? "torus3d" : "torus2d";
  }
  [[nodiscard]] TopologyKind kind() const noexcept override {
    return three_d_ ? TopologyKind::kTorus3d : TopologyKind::kTorus2d;
  }
  [[nodiscard]] int num_nodes() const noexcept override { return n_; }
  [[nodiscard]] int num_links() const noexcept override { return n_ * kDirs; }
  [[nodiscard]] int num_vertices() const noexcept override { return n_; }

  [[nodiscard]] LinkEnds link_ends(std::uint32_t id) const override {
    const int node = static_cast<int>(id) / kDirs;
    const int dir = static_cast<int>(id) % kDirs;
    return {node, neighbor(node, dir)};
  }

  [[nodiscard]] int route_count(int, int) const override { return three_d_ ? 6 : 2; }

  void route(int src, int dst, int r, RouteBuf& out) const override {
    // The r-th permutation of dimension order.
    static constexpr int kPerm2[2][2] = {{0, 1}, {1, 0}};
    static constexpr int kPerm3[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                         {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
    int cs[3], cd[3];
    coords(src, cs);
    coords(dst, cd);
    int n = 0;
    int cur = src;
    for (int pi = 0; pi < ndims_; ++pi) {
      const int d = three_d_ ? kPerm3[r][pi] : kPerm2[r][pi];
      const int size = dims_[d];
      int delta = cd[d] - cs[d];
      if (delta == 0) continue;
      // Shorter wrap direction; ties (delta == size/2) go positive.
      int step;  // +1 or -1 in dimension d
      int hops = delta;
      if (delta > 0) {
        step = delta <= size / 2 ? 1 : -1;
        hops = step == 1 ? delta : size - delta;
      } else {
        step = -delta < (size + 1) / 2 ? -1 : 1;
        hops = step == -1 ? -delta : size + delta;
      }
      const int dir = 2 * d + (step == 1 ? 0 : 1);
      for (int h = 0; h < hops; ++h) {
        assert(n < RouteBuf::kMaxHops);
        out.hops[n++] = {static_cast<std::uint32_t>(cur * kDirs + dir), kLinkLocal};
        cur = neighbor(cur, dir);
      }
    }
    assert(cur == dst);
    out.n = n;
  }

 private:
  static constexpr int kDirs = 6;  // +x,-x,+y,-y,+z,-z (unused dirs self-loop free)

  void coords(int node, int c[3]) const {
    c[0] = node % dx_;
    c[1] = (node / dx_) % dy_;
    c[2] = node / (dx_ * dy_);
  }

  [[nodiscard]] int neighbor(int node, int dir) const {
    int c[3];
    coords(node, c);
    const int d = dir / 2;
    const int step = dir % 2 == 0 ? 1 : -1;
    c[d] = (c[d] + step + dims_[d]) % dims_[d];
    return c[0] + dx_ * (c[1] + dy_ * c[2]);
  }

  int n_, dx_, dy_, dz_;
  bool three_d_;
  int dims_[3];
  int ndims_;
};

// ---------------------------------------------------------------------------
// Dragonfly: g groups x a routers/group x h hosts/router. Local links are
// all-to-all within a group; one directed global link per ordered group pair,
// attached round-robin over the source group's routers (the router of the
// G -> G' link is ((G' - G - 1) mod a), its reverse end ((G - G' - 1) mod a)
// of G'). Route 0 is minimal; routes 1..valiant are Valiant detours through
// deterministic intermediate groups, giving allowed non-minimal spray paths
// that relieve a hot direct global link.
// ---------------------------------------------------------------------------
class Dragonfly final : public Topology {
 public:
  Dragonfly(int num_nodes, int routers_per_group, int hosts_per_router, int valiant)
      : n_(num_nodes), a_(routers_per_group), h_(hosts_per_router), valiant_(valiant) {
    const int per_group = a_ * h_;
    g_ = (n_ + per_group - 1) / per_group;
    routers_ = g_ * a_;
    // Directed link id layout:
    //   host_up    [0, n)
    //   host_down  [n, 2n)
    //   local      router ra -> rb (a*(a-1) per group):
    //              2n + (group*a + ra)*(a-1) + local_index(rb)
    //   global     ordered group pair (G, G'):
    //              2n + routers*(a-1) + G*(g-1) + idx(G')
    local0_ = 2 * n_;
    global0_ = local0_ + routers_ * (a_ - 1);
    total_links_ = global0_ + g_ * (g_ - 1);
  }

  [[nodiscard]] const char* name() const noexcept override { return "dragonfly"; }
  [[nodiscard]] TopologyKind kind() const noexcept override {
    return TopologyKind::kDragonfly;
  }
  [[nodiscard]] int num_nodes() const noexcept override { return n_; }
  [[nodiscard]] int num_links() const noexcept override { return total_links_; }
  [[nodiscard]] int num_vertices() const noexcept override { return n_ + routers_; }

  [[nodiscard]] LinkEnds link_ends(std::uint32_t id) const override {
    const int i = static_cast<int>(id);
    if (i < n_) return {i, n_ + router_of(i)};
    if (i < 2 * n_) return {n_ + router_of(i - n_), i - n_};
    if (i < global0_) {
      const int k = i - local0_;
      const int ra = k / (a_ - 1);
      const int off = k % (a_ - 1);
      const int in_group = ra % a_;
      const int rb = (ra / a_) * a_ + (off >= in_group ? off + 1 : off);
      return {n_ + ra, n_ + rb};
    }
    const int k = i - global0_;
    const int gs = k / (g_ - 1);
    const int off = k % (g_ - 1);
    const int gd = off >= gs ? off + 1 : off;
    return {n_ + gateway_out(gs, gd), n_ + gateway_in(gd, gs)};
  }

  [[nodiscard]] int route_count(int src, int dst) const override {
    if (group_of(src) == group_of(dst)) return 1;
    return 1 + std::min(valiant_, g_ - 2);
  }

  void route(int src, int dst, int r, RouteBuf& out) const override {
    int n = 0;
    out.hops[n++] = {static_cast<std::uint32_t>(src), kLinkHost};
    const int gs = group_of(src);
    const int gd = group_of(dst);
    int cur = router_of(src);  // global router index
    if (gs != gd) {
      if (r == 0) {
        cur = hop_to_group(cur, gd, out, n);
      } else {
        // Valiant detour: intermediate group (gs + 1 + (r - 1 + gd)) spread
        // deterministically, skipping gs and gd.
        int gi = (gs + 1 + ((r - 1) + (gd % std::max(1, g_ - 2)))) % g_;
        while (gi == gs || gi == gd) gi = (gi + 1) % g_;
        cur = hop_to_group(cur, gi, out, n);
        cur = hop_to_group(cur, gd, out, n);
      }
    }
    const int rd = router_of(dst);
    if (cur != rd) {
      out.hops[n++] = {link_local(cur, rd), kLinkLocal};
    }
    out.hops[n++] = {static_cast<std::uint32_t>(n_ + dst), kLinkHost};
    out.n = n;
  }

 private:
  [[nodiscard]] int group_of(int node) const { return node / (a_ * h_); }
  [[nodiscard]] int router_of(int node) const {
    return group_of(node) * a_ + (node / h_) % a_;
  }
  /// Router (global index) of group gs that owns the gs -> gd global link.
  [[nodiscard]] int gateway_out(int gs, int gd) const {
    return gs * a_ + ((gd - gs - 1) % a_ + a_) % a_;
  }
  [[nodiscard]] int gateway_in(int gd, int gs) const {
    return gd * a_ + ((gs - gd - 1) % a_ + a_) % a_;
  }
  [[nodiscard]] std::uint32_t link_local(int ra, int rb) const {
    const int in_group = rb % a_;
    const int ra_in = ra % a_;
    const int off = in_group > ra_in ? in_group - 1 : in_group;
    return static_cast<std::uint32_t>(local0_ + ra * (a_ - 1) + off);
  }
  [[nodiscard]] std::uint32_t link_global(int gs, int gd) const {
    const int off = gd > gs ? gd - 1 : gd;
    return static_cast<std::uint32_t>(global0_ + gs * (g_ - 1) + off);
  }

  /// Walk from router `cur` to group `gd`'s entry router: local hop to the
  /// gateway (if needed) then the global link. Returns the arrival router.
  int hop_to_group(int cur, int gd, RouteBuf& out, int& n) const {
    const int gs = cur / a_;
    const int gw = gateway_out(gs, gd);
    if (cur != gw) {
      out.hops[n++] = {link_local(cur, gw), kLinkLocal};
    }
    out.hops[n++] = {link_global(gs, gd), kLinkGlobal};
    return gateway_in(gd, gs);
  }

  int n_, a_, h_, valiant_;
  int g_ = 0, routers_ = 0;
  int local0_ = 0, global0_ = 0, total_links_ = 0;
};

/// Near-balanced exact factorization of n into `dims` factors (descending
/// greedy by largest divisor <= the remaining geometric mean). Primes
/// degenerate to rings, which is still a valid torus.
void factorize(int n, int dims, int out[3]) {
  out[0] = out[1] = out[2] = 1;
  int rem = n;
  for (int d = 0; d < dims - 1; ++d) {
    const int want = static_cast<int>(
        std::round(std::pow(static_cast<double>(rem), 1.0 / (dims - d))));
    int best = 1;
    for (int f = 1; f * f <= rem; ++f) {
      if (rem % f != 0) continue;
      const int g = rem / f;
      if (f <= want && f > best) best = f;
      if (g <= want && g > best) best = g;
    }
    // `want` may undershoot every divisor; fall back to the smallest divisor
    // above it so the product stays exact.
    if (best == 1 && rem > 1) {
      for (int f = 2; f <= rem; ++f) {
        if (rem % f == 0) {
          best = f;
          break;
        }
      }
    }
    out[d] = best;
    rem /= best;
  }
  out[dims - 1] = rem;
  std::sort(out, out + dims);  // ascending: z the smallest, x the largest
  std::swap(out[0], out[dims - 1]);
}

}  // namespace

std::unique_ptr<Topology> make_topology(const sim::MachineConfig& cfg, int num_nodes) {
  switch (cfg.topology) {
    case TopologyKind::kSpMultistage:
      return std::make_unique<SpMultistage>(num_nodes, cfg.num_routes);
    case TopologyKind::kFatTree: {
      int levels = cfg.fattree_levels;
      if (levels == 0) levels = num_nodes <= 64 ? 2 : 3;
      return std::make_unique<FatTree>(num_nodes, levels, cfg.fattree_down, cfg.fattree_up,
                                       cfg.fattree_mult);
    }
    case TopologyKind::kTorus2d:
    case TopologyKind::kTorus3d: {
      const bool three_d = cfg.topology == TopologyKind::kTorus3d;
      int d[3] = {cfg.torus_x, cfg.torus_y, three_d ? cfg.torus_z : 1};
      if (d[0] == 0 || d[1] == 0 || (three_d && d[2] == 0)) {
        factorize(num_nodes, three_d ? 3 : 2, d);
        if (!three_d) d[2] = 1;
      }
      assert(d[0] * d[1] * d[2] == num_nodes && "torus dims must multiply to the node count");
      return std::make_unique<Torus>(num_nodes, d[0], d[1], d[2], three_d);
    }
    case TopologyKind::kDragonfly:
      return std::make_unique<Dragonfly>(num_nodes, cfg.df_routers_per_group,
                                         cfg.df_hosts_per_router, cfg.df_valiant_routes);
  }
  return std::make_unique<SpMultistage>(num_nodes, cfg.num_routes);
}

const char* topology_name(sim::TopologyKind k) noexcept {
  switch (k) {
    case TopologyKind::kSpMultistage: return "sp";
    case TopologyKind::kFatTree: return "fattree";
    case TopologyKind::kTorus2d: return "torus2d";
    case TopologyKind::kTorus3d: return "torus3d";
    case TopologyKind::kDragonfly: return "dragonfly";
  }
  return "?";
}

bool topology_from_name(const std::string& s, sim::TopologyKind* out) {
  if (s == "sp" || s == "multistage") *out = TopologyKind::kSpMultistage;
  else if (s == "fattree" || s == "fat-tree") *out = TopologyKind::kFatTree;
  else if (s == "torus2d") *out = TopologyKind::kTorus2d;
  else if (s == "torus3d" || s == "torus") *out = TopologyKind::kTorus3d;
  else if (s == "dragonfly") *out = TopologyKind::kDragonfly;
  else return false;
  return true;
}

}  // namespace sp::net
