#include "net/switch_fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace sp::net {

namespace {
/// Heap order for pending deliveries: earliest (time, injection seq) first.
/// Comparator is "greater" so std::push/pop_heap yield a min-heap.
struct PendingLater {
  bool operator()(const auto& a, const auto& b) const noexcept {
    return a.t != b.t ? a.t > b.t : a.seq > b.seq;
  }
};
}  // namespace

SwitchFabric::SwitchFabric(sim::Simulator& sim, const sim::MachineConfig& cfg, int num_nodes)
    : sim_(sim),
      cfg_(cfg),
      num_nodes_(num_nodes),
      topo_(make_topology(cfg, num_nodes)),
      links_(static_cast<std::size_t>(topo_->num_links())),
      deliver_(static_cast<std::size_t>(num_nodes)),
      rows_(static_cast<std::size_t>(num_nodes)),
      rng_(cfg.fabric_seed) {
  assert(num_nodes >= 1);
  assert(cfg.num_routes >= 1);
  combining_ = std::make_unique<CombiningEngine>(sim, cfg, *topo_);
  batching_ = cfg.fabric_delivery_batching == 1 ||
              (cfg.fabric_delivery_batching < 0 &&
               cfg.topology != sim::TopologyKind::kSpMultistage);
  if (batching_) queues_.resize(static_cast<std::size_t>(num_nodes));
}

SwitchFabric::~SwitchFabric() = default;

void SwitchFabric::attach(int node, DeliverFn deliver) {
  assert(node >= 0 && node < num_nodes_);
  deliver_[static_cast<std::size_t>(node)] = std::move(deliver);
}

int SwitchFabric::route_count(int src, int dst) const {
  return topo_->route_count(src, dst);
}

SwitchFabric::PairState& SwitchFabric::pair_state(int src, int dst) {
  auto& row = rows_[static_cast<std::size_t>(src)];
  if (row == nullptr) {
    // Materialize the whole source row, each pair's round-robin position
    // staggered by (s*7 + d*13) so different pairs do not march in lock-step
    // on the same spine. The eager table stored this modulo num_routes; the
    // raw value is congruent under the modulo inject() applies, so SP
    // multistage route choices are bit-identical.
    row = std::make_unique<PairState[]>(static_cast<std::size_t>(num_nodes_));
    for (int d = 0; d < num_nodes_; ++d) {
      row[static_cast<std::size_t>(d)].rr = static_cast<std::uint32_t>(src * 7 + d * 13);
    }
    ++rows_allocated_;
  }
  PairState& ps = row[static_cast<std::size_t>(dst)];
  if (ps.count == 0) {
    ps.count = static_cast<std::uint16_t>(topo_->route_count(src, dst));
  }
  return ps;
}

int SwitchFabric::peek_route(int src, int dst) const {
  const auto& row = rows_[static_cast<std::size_t>(src)];
  const auto count = static_cast<std::uint32_t>(topo_->route_count(src, dst));
  const std::uint32_t rr = row != nullptr ? row[static_cast<std::size_t>(dst)].rr
                                          : static_cast<std::uint32_t>(src * 7 + dst * 13);
  return static_cast<int>(rr % count);
}

sim::TimeNs SwitchFabric::wire_time(std::size_t bytes, std::uint8_t cls) const {
  // Host links serialize at the baseline rate; the multiply-by-1.0 keeps the
  // result bit-identical to the pre-topology fabric's single-rate formula.
  const double scale = cls == kLinkLocal    ? cfg_.topo_local_bw_scale
                       : cls == kLinkGlobal ? cfg_.topo_global_bw_scale
                                            : 1.0;
  return static_cast<sim::TimeNs>(
      std::llround(cfg_.link_ns_per_byte * scale * static_cast<double>(bytes)));
}

sim::TimeNs SwitchFabric::traverse(Link& link, sim::TimeNs at, std::size_t bytes,
                                   std::uint8_t cls) {
  // Cut-through approximation: the packet header advances after hop latency;
  // the link stays busy for the serialization time starting when the packet
  // gets the link.
  const sim::TimeNs start = at > link.free_at ? at : link.free_at;
  link.free_at = start + wire_time(bytes, cls);
  sim::TimeNs lat = cfg_.hop_latency_ns;
  if (cls == kLinkGlobal) lat += cfg_.topo_global_extra_latency_ns;
  return start + lat;
}

void SwitchFabric::inject(Packet&& pkt) {
  assert(pkt.src >= 0 && pkt.src < num_nodes_);
  assert(pkt.dst >= 0 && pkt.dst < num_nodes_);

  PairState& ps = pair_state(pkt.src, pkt.dst);
  int route = static_cast<int>(ps.rr++ % ps.count);
  // Route-choice bias (schedule-space exploration): with probability
  // route_bias the packet ignores the round-robin position and sprays onto a
  // seeded random route, unbalancing per-route load so some routes congest.
  if (cfg_.route_bias > 0.0 && rng_.chance(cfg_.route_bias)) {
    route = static_cast<int>(rng_.next_below(ps.count));
  }
  pkt.route = route;

  // Fault injection. Draw order is fixed (route bias, burst, drop, jitter,
  // dup, dup jitter) and each knob draws only when enabled, so a clean run
  // consumes no randomness and faulty runs are reproducible per seed.
  const std::size_t bytes = pkt.wire_bytes();
  if (ps.burst_left > 0) {
    --ps.burst_left;
    ++dropped_;
    if (telemetry_ != nullptr) {
      telemetry_->emit(sim_.now(), pkt.src, sim::Ev::kPacketDrop,
                       static_cast<std::uint64_t>(pkt.dst), bytes);
    }
    arena_.release(std::move(pkt.frame));
    return;
  }
  if (cfg_.packet_drop_rate > 0.0 && rng_.chance(cfg_.packet_drop_rate)) {
    if (cfg_.burst_drop_len > 1) {
      ps.burst_left = static_cast<std::int16_t>(cfg_.burst_drop_len - 1);
    }
    ++dropped_;
    if (telemetry_ != nullptr) {
      telemetry_->emit(sim_.now(), pkt.src, sim::Ev::kPacketDrop,
                       static_cast<std::uint64_t>(pkt.dst), bytes);
    }
    arena_.release(std::move(pkt.frame));
    return;
  }

  // One virtual call expands the route into link ids; the header then
  // propagates hop by hop, each hop queuing on its link's busy-until slot.
  // The SP multistage expansion is the same node-up, leaf-up, leaf-down,
  // node-down walk (same link identities, same order) as the pre-topology
  // fabric, so its schedules are bit-identical.
  RouteBuf rb;
  topo_->route(pkt.src, pkt.dst, route, rb);
  sim::TimeNs t = sim_.now();
  for (int i = 0; i < rb.n; ++i) {
    t = traverse(links_[rb.hops[i].link], t, bytes, rb.hops[i].cls);
  }
  // Tail arrival: one end-to-end serialization (cut-through) at the final
  // (host) link's rate, plus any configured per-route skew (test hook; 0 on
  // the real machine).
  t += wire_time(bytes, rb.n > 0 ? rb.hops[rb.n - 1].cls
                                 : static_cast<std::uint8_t>(kLinkHost));
  t += static_cast<sim::TimeNs>(route) * cfg_.route_skew_ns;
  if (cfg_.packet_jitter_ns > 0) {
    t += static_cast<sim::TimeNs>(
        rng_.next_below(static_cast<std::uint32_t>(cfg_.packet_jitter_ns)));
  }

  if (cfg_.packet_dup_rate > 0.0 && rng_.chance(cfg_.packet_dup_rate)) {
    // Duplicate delivery: a second copy of the frame arrives independently
    // (modeled at the adapter, so it does not re-occupy the links). Its own
    // jitter draw lets the copy overtake the original.
    Packet copy;
    copy.src = pkt.src;
    copy.dst = pkt.dst;
    copy.route = pkt.route;
    copy.modeled_bytes = pkt.modeled_bytes;
    copy.frame = arena_.acquire(pkt.frame.size());
    std::copy(pkt.frame.begin(), pkt.frame.end(), copy.frame.begin());
    sim::TimeNs td = t + wire_time(bytes, kLinkHost);
    if (cfg_.packet_jitter_ns > 0) {
      td += static_cast<sim::TimeNs>(
          rng_.next_below(static_cast<std::uint32_t>(cfg_.packet_jitter_ns)));
    }
    ++duplicated_;
    ++delivered_;
    bytes_ += static_cast<std::int64_t>(bytes);
    if (telemetry_ != nullptr) {
      telemetry_->emit(sim_.now(), copy.src, sim::Ev::kPacketDup,
                       static_cast<std::uint64_t>(copy.dst), bytes);
    }
    schedule_delivery(copy.dst, td, std::move(copy));
  }

  ++delivered_;
  bytes_ += static_cast<std::int64_t>(bytes);
  if (telemetry_ != nullptr) {
    telemetry_->emit(sim_.now(), pkt.src, sim::Ev::kPacketInject,
                     static_cast<std::uint64_t>(pkt.dst), bytes);
  }
  schedule_delivery(pkt.dst, t, std::move(pkt));
}

void SwitchFabric::schedule_delivery(int dst, sim::TimeNs t, Packet&& pkt) {
  if (!batching_) {
    // Direct mode: one event-queue entry per in-flight packet, exactly the
    // pre-topology fabric's scheduling (golden digests pin this event order
    // for the SP multistage path).
    auto& sink = deliver_[static_cast<std::size_t>(dst)];
    assert(sink && "no adapter attached to destination node");
    const sim::SchedKey key = sim::sched_deliver_key(pkt.src, dst);
    sim_.at(t, key, [&sink, p = std::move(pkt)]() mutable { sink(std::move(p)); });
    return;
  }
  // Batched mode: park the packet in the destination's (time, seq) min-heap
  // and keep at most one wake event armed per destination — the event queue
  // holds O(nodes) fabric entries regardless of how many packets are in
  // flight, and back-to-back arrivals on a busy node drain in one event.
  DstQueue& q = queues_[static_cast<std::size_t>(dst)];
  q.heap.push_back(Pending{t, next_seq_++, std::move(pkt)});
  std::push_heap(q.heap.begin(), q.heap.end(), PendingLater{});
  if (!q.draining && (q.wake_at < 0 || t < q.wake_at)) arm_wake(dst, q);
}

void SwitchFabric::arm_wake(int dst, DstQueue& q) {
  q.wake_at = q.heap.front().t;
  const std::uint64_t gen = ++q.gen;  // invalidates any earlier-armed wake
  sim_.at(q.wake_at, sim::sched_node_key(dst), [this, dst, gen] { drain(dst, gen); });
}

void SwitchFabric::drain(int dst, std::uint64_t gen) {
  DstQueue& q = queues_[static_cast<std::size_t>(dst)];
  if (gen != q.gen) return;  // superseded by an earlier re-arm
  q.wake_at = -1;
  q.draining = true;  // deliveries may inject follow-on packets; don't re-arm
  auto& sink = deliver_[static_cast<std::size_t>(dst)];
  assert(sink && "no adapter attached to destination node");
  while (!q.heap.empty() && q.heap.front().t <= sim_.now()) {
    std::pop_heap(q.heap.begin(), q.heap.end(), PendingLater{});
    Packet p = std::move(q.heap.back().pkt);
    q.heap.pop_back();
    sink(std::move(p));
  }
  q.draining = false;
  if (!q.heap.empty()) arm_wake(dst, q);
}

}  // namespace sp::net
