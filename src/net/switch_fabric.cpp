#include "net/switch_fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace sp::net {

namespace {
/// Serialization time of `bytes` on one link.
[[nodiscard]] sim::TimeNs wire_time(const sim::MachineConfig& cfg, std::size_t bytes) {
  return static_cast<sim::TimeNs>(std::llround(cfg.link_ns_per_byte * static_cast<double>(bytes)));
}
}  // namespace

SwitchFabric::SwitchFabric(sim::Simulator& sim, const sim::MachineConfig& cfg, int num_nodes)
    : sim_(sim),
      cfg_(cfg),
      num_nodes_(num_nodes),
      num_leaves_((num_nodes + 3) / 4),
      node_up_(static_cast<std::size_t>(num_nodes)),
      node_down_(static_cast<std::size_t>(num_nodes)),
      leaf_up_(static_cast<std::size_t>(num_leaves_) * static_cast<std::size_t>(cfg.num_routes)),
      leaf_down_(static_cast<std::size_t>(num_leaves_) * static_cast<std::size_t>(cfg.num_routes)),
      deliver_(static_cast<std::size_t>(num_nodes)),
      rr_(static_cast<std::size_t>(num_nodes) * static_cast<std::size_t>(num_nodes)),
      burst_left_(static_cast<std::size_t>(num_nodes) * static_cast<std::size_t>(num_nodes), 0),
      rng_(cfg.fabric_seed) {
  assert(num_nodes >= 1);
  assert(cfg.num_routes >= 1);
  // Stagger the initial round-robin position per pair so different pairs do
  // not march in lock-step on the same spine.
  for (int s = 0; s < num_nodes; ++s) {
    for (int d = 0; d < num_nodes; ++d) {
      rr_[static_cast<std::size_t>(s) * static_cast<std::size_t>(num_nodes) + static_cast<std::size_t>(d)] =
          static_cast<std::uint32_t>((s * 7 + d * 13) % cfg.num_routes);
    }
  }
}

void SwitchFabric::attach(int node, DeliverFn deliver) {
  assert(node >= 0 && node < num_nodes_);
  deliver_[static_cast<std::size_t>(node)] = std::move(deliver);
}

int SwitchFabric::peek_route(int src, int dst) const {
  const auto idx = static_cast<std::size_t>(src) * static_cast<std::size_t>(num_nodes_) +
                   static_cast<std::size_t>(dst);
  return static_cast<int>(rr_[idx] % static_cast<std::uint32_t>(cfg_.num_routes));
}

sim::TimeNs SwitchFabric::traverse(Link& link, sim::TimeNs at, std::size_t bytes) {
  // Cut-through approximation: the packet header advances after hop latency;
  // the link stays busy for the serialization time starting when the packet
  // gets the link.
  const sim::TimeNs start = at > link.free_at ? at : link.free_at;
  link.free_at = start + wire_time(cfg_, bytes);
  return start + cfg_.hop_latency_ns;
}

void SwitchFabric::inject(Packet&& pkt) {
  assert(pkt.src >= 0 && pkt.src < num_nodes_);
  assert(pkt.dst >= 0 && pkt.dst < num_nodes_);

  const auto pair_idx = static_cast<std::size_t>(pkt.src) * static_cast<std::size_t>(num_nodes_) +
                        static_cast<std::size_t>(pkt.dst);
  int route = static_cast<int>(rr_[pair_idx]++ % static_cast<std::uint32_t>(cfg_.num_routes));
  // Route-choice bias (schedule-space exploration): with probability
  // route_bias the packet ignores the round-robin position and sprays onto a
  // seeded random route, unbalancing per-route load so some routes congest.
  if (cfg_.route_bias > 0.0 && rng_.chance(cfg_.route_bias)) {
    route = static_cast<int>(rng_.next_below(static_cast<std::uint32_t>(cfg_.num_routes)));
  }
  pkt.route = route;

  // Fault injection. Draw order is fixed (route bias, burst, drop, jitter,
  // dup, dup jitter) and each knob draws only when enabled, so a clean run
  // consumes no randomness and faulty runs are reproducible per seed.
  const std::size_t bytes = pkt.wire_bytes();
  if (burst_left_[pair_idx] > 0) {
    --burst_left_[pair_idx];
    ++dropped_;
    if (telemetry_ != nullptr) {
      telemetry_->emit(sim_.now(), pkt.src, sim::Ev::kPacketDrop,
                       static_cast<std::uint64_t>(pkt.dst), bytes);
    }
    arena_.release(std::move(pkt.frame));
    return;
  }
  if (cfg_.packet_drop_rate > 0.0 && rng_.chance(cfg_.packet_drop_rate)) {
    if (cfg_.burst_drop_len > 1) burst_left_[pair_idx] = cfg_.burst_drop_len - 1;
    ++dropped_;
    if (telemetry_ != nullptr) {
      telemetry_->emit(sim_.now(), pkt.src, sim::Ev::kPacketDrop,
                       static_cast<std::uint64_t>(pkt.dst), bytes);
    }
    arena_.release(std::move(pkt.frame));
    return;
  }

  const int lsrc = leaf_of(pkt.src);
  const int ldst = leaf_of(pkt.dst);
  const auto up_idx = static_cast<std::size_t>(lsrc) * static_cast<std::size_t>(cfg_.num_routes) +
                      static_cast<std::size_t>(route);
  const auto down_idx = static_cast<std::size_t>(ldst) * static_cast<std::size_t>(cfg_.num_routes) +
                        static_cast<std::size_t>(route);

  // Header propagation through the four hops, each queuing on its link.
  sim::TimeNs t = sim_.now();
  t = traverse(node_up_[static_cast<std::size_t>(pkt.src)], t, bytes);
  t = traverse(leaf_up_[up_idx], t, bytes);
  t = traverse(leaf_down_[down_idx], t, bytes);
  t = traverse(node_down_[static_cast<std::size_t>(pkt.dst)], t, bytes);
  // Tail arrival: one end-to-end serialization (cut-through), plus any
  // configured per-route skew (test hook; 0 on the real machine).
  t += wire_time(cfg_, bytes);
  t += static_cast<sim::TimeNs>(route) * cfg_.route_skew_ns;
  if (cfg_.packet_jitter_ns > 0) {
    t += static_cast<sim::TimeNs>(
        rng_.next_below(static_cast<std::uint32_t>(cfg_.packet_jitter_ns)));
  }

  if (cfg_.packet_dup_rate > 0.0 && rng_.chance(cfg_.packet_dup_rate)) {
    // Duplicate delivery: a second copy of the frame arrives independently
    // (modeled at the adapter, so it does not re-occupy the links). Its own
    // jitter draw lets the copy overtake the original.
    Packet copy;
    copy.src = pkt.src;
    copy.dst = pkt.dst;
    copy.route = pkt.route;
    copy.modeled_bytes = pkt.modeled_bytes;
    copy.frame = arena_.acquire(pkt.frame.size());
    std::copy(pkt.frame.begin(), pkt.frame.end(), copy.frame.begin());
    sim::TimeNs td = t + wire_time(cfg_, bytes);
    if (cfg_.packet_jitter_ns > 0) {
      td += static_cast<sim::TimeNs>(
          rng_.next_below(static_cast<std::uint32_t>(cfg_.packet_jitter_ns)));
    }
    ++duplicated_;
    ++delivered_;
    bytes_ += static_cast<std::int64_t>(bytes);
    if (telemetry_ != nullptr) {
      telemetry_->emit(sim_.now(), copy.src, sim::Ev::kPacketDup,
                       static_cast<std::uint64_t>(copy.dst), bytes);
    }
    schedule_delivery(copy.dst, td, std::move(copy));
  }

  ++delivered_;
  bytes_ += static_cast<std::int64_t>(bytes);
  if (telemetry_ != nullptr) {
    telemetry_->emit(sim_.now(), pkt.src, sim::Ev::kPacketInject,
                     static_cast<std::uint64_t>(pkt.dst), bytes);
  }
  schedule_delivery(pkt.dst, t, std::move(pkt));
}

void SwitchFabric::schedule_delivery(int dst, sim::TimeNs t, Packet&& pkt) {
  auto& sink = deliver_[static_cast<std::size_t>(dst)];
  assert(sink && "no adapter attached to destination node");
  sim_.at(t, [&sink, p = std::move(pkt)]() mutable { sink(std::move(p)); });
}

}  // namespace sp::net
