// Pluggable interconnect topologies for the switch fabric (DESIGN.md §13).
//
// A Topology describes the link graph of one interconnect and enumerates the
// alternative routes of every (src, dst) node pair. The fabric owns one link
// state (busy-until time) per directed link id and drives the per-packet hop
// walk; the topology only does the *geometry*: how many routes a pair has and
// which link ids route r traverses. Four fabrics are modeled:
//
//   kSpMultistage  the paper's SP switch: 4-node leaf elements, `num_routes`
//                  spine elements, every pair sprayed round-robin over all
//                  spines. Bit-exact with the pre-topology-layer fabric (the
//                  determinism golden digests pin its schedules).
//   kFatTree       parameterized folded-Clos (after SimGrid's FatTreeZone):
//                  2 or 3 levels, per-level down/up port counts and link
//                  multiplicity. Routes = one choice of up-port per level to
//                  the nearest common ancestor; the down path is forced.
//   kTorus2d/3d    wrap-around mesh, node id = x + dx*(y + dy*z). Minimal
//                  dimension-order routing; the spray walks the distinct
//                  dimension *orders* (XY/YX, 6 permutations in 3-D), each a
//                  valid minimal path, so parallel streams split across
//                  disjoint intermediate links.
//   kDragonfly     groups of routers with all-to-all global links; route 0 is
//                  minimal (up to 5 hops: host-local-global-local-host),
//                  further routes are Valiant detours through deterministic
//                  intermediate groups (allowed non-minimal paths).
//
// Hot-path contract: route() is called once per injected packet and must not
// allocate or touch per-pair O(N^2) state — everything derives from O(N)
// coordinate tables built at construction plus integer arithmetic. Link
// classes (host / local / global) let the fabric charge per-class latency
// and bandwidth without the topology appearing on the per-hop path at all.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/config.hpp"

namespace sp::net {

/// Cost class of a link; indexes the fabric's per-class cost table.
enum LinkClass : std::uint8_t {
  kLinkHost = 0,    ///< node <-> first switch/router
  kLinkLocal = 1,   ///< intra-pod / leaf-spine / torus neighbor / intra-group
  kLinkGlobal = 2,  ///< core level / dragonfly inter-group (long cables)
};
inline constexpr int kLinkClasses = 3;

/// One hop of an expanded route: directed link id + its cost class.
struct Hop {
  std::uint32_t link;
  std::uint8_t cls;
};

/// Fixed-capacity hop buffer filled by Topology::route(). 64 covers the
/// longest minimal path of any supported config (a 1024-node 2-D torus ring
/// dimension is 32 wide -> up to 34 hops with the host links).
struct RouteBuf {
  static constexpr int kMaxHops = 72;
  Hop hops[kMaxHops];
  int n = 0;
};

/// Directed-link endpoints in the topology's vertex space (for validation:
/// vertices 0..num_nodes-1 are compute nodes, higher ids are switch/router
/// elements). Routes must chain: route[i].to == route[i+1].from.
struct LinkEnds {
  int from = -1;
  int to = -1;
};

class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual sim::TopologyKind kind() const noexcept = 0;
  [[nodiscard]] virtual int num_nodes() const noexcept = 0;
  /// Total directed links; the fabric allocates one busy-until slot per id.
  [[nodiscard]] virtual int num_links() const noexcept = 0;
  /// Total vertices (nodes + switch elements), for route validation.
  [[nodiscard]] virtual int num_vertices() const noexcept = 0;
  /// Endpoints of directed link `id` (diagnostics / invariant tests).
  [[nodiscard]] virtual LinkEnds link_ends(std::uint32_t id) const = 0;

  /// Number of alternative routes of the pair (>= 1; src != dst).
  [[nodiscard]] virtual int route_count(int src, int dst) const = 0;

  /// Expand route `r` (in [0, route_count)) of the pair into `out`.
  virtual void route(int src, int dst, int r, RouteBuf& out) const = 0;
};

/// Build the topology selected by cfg.topology for `num_nodes` nodes.
/// Shape knobs at their 0/auto defaults are derived from the node count.
[[nodiscard]] std::unique_ptr<Topology> make_topology(const sim::MachineConfig& cfg,
                                                      int num_nodes);

[[nodiscard]] const char* topology_name(sim::TopologyKind k) noexcept;

/// Parse a CLI topology name ("sp", "fattree", "torus2d", "torus3d",
/// "dragonfly"); returns false on an unknown name.
bool topology_from_name(const std::string& s, sim::TopologyKind* out);

}  // namespace sp::net
