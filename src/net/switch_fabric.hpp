// The SP multistage packet-switched network.
//
// Topology: every node connects to a leaf switch element (4 nodes per leaf);
// `num_routes` spine elements connect all leaves. A packet from s to d takes
//     s -> leaf(s) -> spine(r) -> leaf(d) -> d
// so each node pair has exactly `num_routes` distinct routes (4 on the real
// SP). The fabric sprays consecutive packets of a pair across routes
// round-robin, as the SP switch does. Each directed link serializes packets
// (cut-through: one end-to-end serialization when uncongested, plus queuing
// wait on busy links), so congested routes lag and packets of one message
// genuinely arrive out of order — the phenomenon the Pipes layer must reorder
// for and LAPI handles by reassembling at offsets.
//
// Fault injection: the fabric can additionally drop packets (independently or
// in per-pair bursts), deliver duplicates, and add uniform delivery jitter.
// All draws come from the seeded per-fabric Pcg32 in a fixed order, so a
// given (seed, workload) pair yields a bit-identical fault schedule — lossy
// runs are as reproducible as clean ones. Acks are never retransmitted by the
// transports, so every injected fault must be survivable via data-packet
// retransmission plus duplicate re-acknowledgement alone.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/telemetry.hpp"

namespace sp::net {

class SwitchFabric {
 public:
  using DeliverFn = std::function<void(Packet&&)>;

  SwitchFabric(sim::Simulator& sim, const sim::MachineConfig& cfg, int num_nodes);

  /// Register the receive upcall for `node` (its adapter's DMA-in path).
  void attach(int node, DeliverFn deliver);

  /// Put a packet on the wire now. The fabric picks the route, models link
  /// serialization/queuing, and schedules delivery at the destination.
  void inject(Packet&& pkt);

  [[nodiscard]] int num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] int num_routes() const noexcept { return cfg_.num_routes; }
  [[nodiscard]] std::int64_t packets_delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::int64_t packets_dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::int64_t packets_duplicated() const noexcept { return duplicated_; }
  [[nodiscard]] std::int64_t bytes_carried() const noexcept { return bytes_; }

  /// Next route index that inject() would use for the pair (diagnostics).
  [[nodiscard]] int peek_route(int src, int dst) const;

  /// Wire structured telemetry (null disables; the fabric has no NodeRuntime).
  void set_telemetry(sim::Telemetry* t) noexcept { telemetry_ = t; }

  /// The machine-wide frame recycler. Adapters acquire send frames from it
  /// and release frames after delivering them upward.
  [[nodiscard]] FrameArena& arena() noexcept { return arena_; }
  [[nodiscard]] const FrameArena& arena() const noexcept { return arena_; }

 private:
  struct Link {
    sim::TimeNs free_at = 0;
  };

  [[nodiscard]] int leaf_of(int node) const noexcept { return node / 4; }
  [[nodiscard]] sim::TimeNs traverse(Link& link, sim::TimeNs at, std::size_t bytes);

  sim::Simulator& sim_;
  const sim::MachineConfig& cfg_;
  int num_nodes_;
  int num_leaves_;

  // Directed links, indexed as described in the .cpp.
  std::vector<Link> node_up_;     // node -> leaf
  std::vector<Link> node_down_;   // leaf -> node
  std::vector<Link> leaf_up_;     // leaf -> spine   [leaf * num_routes + r]
  std::vector<Link> leaf_down_;   // spine -> leaf   [leaf * num_routes + r]

  void schedule_delivery(int dst, sim::TimeNs t, Packet&& pkt);

  std::vector<DeliverFn> deliver_;
  std::vector<std::uint32_t> rr_;  // per (src,dst) round-robin route counter
  std::vector<int> burst_left_;    // per (src,dst) remaining forced burst drops
  sim::Pcg32 rng_;
  FrameArena arena_;
  sim::Telemetry* telemetry_ = nullptr;

  std::int64_t delivered_ = 0;
  std::int64_t dropped_ = 0;
  std::int64_t duplicated_ = 0;
  std::int64_t bytes_ = 0;
};

}  // namespace sp::net
