// The simulated packet-switched interconnect.
//
// Geometry lives in a pluggable Topology (net/topology.hpp): the fabric asks
// it how many routes a (src, dst) pair has and which directed link ids route
// r traverses, and owns exactly one busy-until slot per link id. The default
// SP multistage topology models the paper's switch — every node pair sprayed
// round-robin over `num_routes` spine elements — and is bit-exact with the
// pre-topology-layer fabric (the determinism golden digests pin it). Fat-tree,
// 2-D/3-D torus, and dragonfly plug in behind the same inject() API.
//
// Each directed link serializes packets (cut-through: one end-to-end
// serialization when uncongested, plus queuing wait on busy links), so
// congested routes lag and packets of one message genuinely arrive out of
// order — the phenomenon the Pipes layer must reorder for and LAPI handles by
// reassembling at offsets.
//
// Hot path at scale (DESIGN.md §13):
//  * Per-(src,dst) round-robin/burst state is allocated lazily one *row* (one
//    source) at a time, so a 1024-node fabric costs O(links) at construction,
//    not O(N^2); the first packet of a pair finds its route counter already
//    staggered by the same (s*7 + d*13) formula the eager table used.
//  * The pair row caches the pair's route count, so spraying is a single
//    indexed increment + modulo — topology virtual calls are one route()
//    expansion per packet, into a fixed stack buffer.
//  * With delivery batching (default on for every topology except SP
//    multistage, whose event order the digests pin), in-flight packets wait
//    in a per-destination (time, seq) min-heap with a single armed wake event
//    per destination, shrinking the global event queue from O(in-flight
//    packets) to O(nodes).
//
// Fault injection: the fabric can additionally drop packets (independently or
// in per-pair bursts), deliver duplicates, and add uniform delivery jitter.
// All draws come from the seeded per-fabric Pcg32 in a fixed order, so a
// given (seed, workload) pair yields a bit-identical fault schedule — lossy
// runs are as reproducible as clean ones. Acks are never retransmitted by the
// transports, so every injected fault must be survivable via data-packet
// retransmission plus duplicate re-acknowledgement alone.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/combining.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/telemetry.hpp"

namespace sp::net {

class SwitchFabric {
 public:
  using DeliverFn = std::function<void(Packet&&)>;

  SwitchFabric(sim::Simulator& sim, const sim::MachineConfig& cfg, int num_nodes);
  ~SwitchFabric();

  /// Register the receive upcall for `node` (its adapter's DMA-in path).
  void attach(int node, DeliverFn deliver);

  /// Put a packet on the wire now. The fabric picks the route, models link
  /// serialization/queuing, and schedules delivery at the destination.
  void inject(Packet&& pkt);

  [[nodiscard]] int num_nodes() const noexcept { return num_nodes_; }
  /// Route count of the SP multistage pair spray (legacy accessor; pairs of
  /// other topologies vary — see route_count()).
  [[nodiscard]] int num_routes() const noexcept { return cfg_.num_routes; }
  /// Alternative routes of this pair under the active topology.
  [[nodiscard]] int route_count(int src, int dst) const;
  [[nodiscard]] std::int64_t packets_delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::int64_t packets_dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::int64_t packets_duplicated() const noexcept { return duplicated_; }
  [[nodiscard]] std::int64_t bytes_carried() const noexcept { return bytes_; }

  /// Next route index that inject() would use for the pair (diagnostics).
  [[nodiscard]] int peek_route(int src, int dst) const;

  /// The active topology (geometry queries; never null).
  [[nodiscard]] const Topology& topology() const noexcept { return *topo_; }
  /// How many per-source pair-state rows have been materialized so far
  /// (construction-cost tests: 0 right after construction).
  [[nodiscard]] int pair_rows_allocated() const noexcept { return rows_allocated_; }
  /// Whether per-destination delivery batching is active.
  [[nodiscard]] bool delivery_batching() const noexcept { return batching_; }

  /// Wire structured telemetry (null disables; the fabric has no NodeRuntime).
  void set_telemetry(sim::Telemetry* t) noexcept {
    telemetry_ = t;
    combining_->set_telemetry(t);
  }

  /// The switch-side combining engine (DESIGN.md §16): in-network allreduce
  /// partial reduction and bcast/barrier replication over this topology.
  [[nodiscard]] CombiningEngine& combining() noexcept { return *combining_; }
  [[nodiscard]] const CombiningEngine& combining() const noexcept { return *combining_; }

  /// The machine-wide frame recycler. Adapters acquire send frames from it
  /// and release frames after delivering them upward.
  [[nodiscard]] FrameArena& arena() noexcept { return arena_; }
  [[nodiscard]] const FrameArena& arena() const noexcept { return arena_; }

 private:
  struct Link {
    sim::TimeNs free_at = 0;
  };

  /// Cached per-(src,dst) spray state, materialized one source row at a time.
  struct PairState {
    std::uint32_t rr = 0;          ///< round-robin position (monotonic)
    std::int16_t burst_left = 0;   ///< remaining forced burst drops
    std::uint16_t count = 0;       ///< cached route_count (0 = not yet cached)
  };

  /// A packet parked in a destination's pending heap (batched delivery).
  struct Pending {
    sim::TimeNs t;
    std::uint64_t seq;
    Packet pkt;
  };
  struct DstQueue {
    std::vector<Pending> heap;  ///< min-heap on (t, seq)
    std::uint64_t gen = 0;      ///< arm generation; stale wakes no-op
    sim::TimeNs wake_at = -1;   ///< time of the armed wake (-1 = none)
    bool draining = false;
  };

  [[nodiscard]] PairState& pair_state(int src, int dst);
  [[nodiscard]] sim::TimeNs traverse(Link& link, sim::TimeNs at, std::size_t bytes,
                                     std::uint8_t cls);
  [[nodiscard]] sim::TimeNs wire_time(std::size_t bytes, std::uint8_t cls) const;

  void schedule_delivery(int dst, sim::TimeNs t, Packet&& pkt);
  void arm_wake(int dst, DstQueue& q);
  void drain(int dst, std::uint64_t gen);

  sim::Simulator& sim_;
  const sim::MachineConfig& cfg_;
  int num_nodes_;
  std::unique_ptr<Topology> topo_;
  std::unique_ptr<CombiningEngine> combining_;
  std::vector<Link> links_;  ///< one busy-until slot per directed link id

  std::vector<DeliverFn> deliver_;
  std::vector<std::unique_ptr<PairState[]>> rows_;  ///< lazy, indexed by src
  int rows_allocated_ = 0;
  bool batching_ = false;
  std::vector<DstQueue> queues_;  ///< sized only when batching
  std::uint64_t next_seq_ = 0;
  sim::Pcg32 rng_;
  FrameArena arena_;
  sim::Telemetry* telemetry_ = nullptr;

  std::int64_t delivered_ = 0;
  std::int64_t dropped_ = 0;
  std::int64_t duplicated_ = 0;
  std::int64_t bytes_ = 0;
};

}  // namespace sp::net
