#include "net/combining.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

namespace sp::net {
namespace {

/// Stream constant for the engine's private fault RNG: distinct from the
/// SwitchFabric's default stream so enabling loss on the combining path never
/// perturbs the user fabric's fault schedule (and vice versa).
constexpr std::uint64_t kInnetRngStream = 0xc0b1e5ULL;

/// Switch element down-arity per topology: how many children one combining
/// element folds. Matches each topology's natural attachment group — the SP
/// leaf crossbar holds 4 nodes, a fat-tree leaf holds down[0], a dragonfly
/// router holds hosts_per_router; the torus has no switches, so elements
/// model quadrant combiners over consecutive node ids.
int combining_radix(const sim::MachineConfig& cfg, sim::TopologyKind kind) noexcept {
  switch (kind) {
    case sim::TopologyKind::kFatTree: return std::max(2, cfg.fattree_down[0]);
    case sim::TopologyKind::kDragonfly: return std::max(2, cfg.df_hosts_per_router);
    default: return 4;  // SP multistage leaf arity; torus quadrant combiner
  }
}

}  // namespace

CombiningEngine::CombiningEngine(sim::Simulator& sim, const sim::MachineConfig& cfg,
                                 const Topology& topo)
    : sim_(sim),
      cfg_(cfg),
      topo_(topo),
      radix_(combining_radix(cfg, topo.kind())),
      rng_(cfg.fabric_seed, kInnetRngStream) {}

sim::TimeNs CombiningEngine::wire_ns(std::size_t bytes) const noexcept {
  // One end-to-end cut-through serialization: the vector streams through the
  // combining tree at link rate, paying per-element pipeline latency but not
  // per-level store-and-forward (the modeled payoff over host trees).
  return static_cast<sim::TimeNs>(static_cast<double>(bytes) * cfg_.link_ns_per_byte);
}

sim::TimeNs CombiningEngine::fold_ns(int children, std::size_t bytes) const noexcept {
  const auto folds = static_cast<sim::TimeNs>(std::max(0, children - 1));
  return folds * (cfg_.innet_combine_ns +
                  static_cast<sim::TimeNs>(static_cast<double>(bytes) *
                                           cfg_.innet_combine_ns_per_byte));
}

void CombiningEngine::note_table(std::int64_t delta) noexcept {
  table_live_ += delta;
  table_peak_ = std::max(table_peak_, table_live_);
}

CombiningEngine::Instance& CombiningEngine::open(Key k, const Op& op) {
  auto it = table_.find(k);
  if (it != table_.end()) return it->second;
  Instance inst;
  inst.nranks = static_cast<int>(op.tasks.size());
  inst.root = op.root;
  inst.len = op.len;
  inst.reduce_phase = op.reduce_phase;
  inst.combine = op.combine;
  inst.tasks = op.tasks;
  inst.ranks.resize(static_cast<std::size_t>(inst.nranks));
  // Level 0 elements cover radix_ consecutive comm ranks each; every higher
  // level groups radix_ consecutive elements, down to a single top element.
  // Contiguity is what makes the fixed child-port fold equal the sequential
  // rank-order reduction.
  int width = inst.nranks;
  do {
    const int elems = (width + radix_ - 1) / radix_;
    std::vector<Element> level(static_cast<std::size_t>(elems));
    for (int e = 0; e < elems; ++e) {
      const int kids = std::min(radix_, width - e * radix_);
      level[static_cast<std::size_t>(e)].nchildren = kids;
      level[static_cast<std::size_t>(e)].present.assign(static_cast<std::size_t>(kids), false);
      level[static_cast<std::size_t>(e)].stash.resize(static_cast<std::size_t>(kids));
    }
    inst.levels.push_back(std::move(level));
    width = elems;
  } while (width > 1);
  return table_.emplace(k, std::move(inst)).first->second;
}

void CombiningEngine::start(Op&& op) {
  const Key k = key(op.ctx, op.seq);
  Instance& inst = open(k, op);
  assert(op.rank >= 0 && op.rank < inst.nranks);
  RankSlot& slot = inst.ranks[static_cast<std::size_t>(op.rank)];
  assert(!slot.registered && "duplicate post for one (ctx, seq, rank)");
  slot.registered = true;
  slot.buf = op.buf;
  slot.on_done = std::move(op.on_done);

  if (inst.reduce_phase) {
    // Contribution climbs one hop to the rank's leaf element; the payload
    // pays its single cut-through serialization here.
    auto data = std::make_shared<std::vector<std::byte>>();
    if (inst.len > 0) data->assign(op.buf, op.buf + inst.len);
    const int elem = op.rank / radix_;
    const int port = op.rank % radix_;
    transfer(cfg_.innet_hop_ns + wire_ns(inst.len),
             [this, k, elem, port, data] { contribute(k, 0, elem, port, data); });
    return;
  }

  // Bcast: only the root contributes data; everyone else just parks a
  // delivery slot. The root's payload climbs the whole spine to the top
  // element, which then replicates down every subtree at once.
  if (op.rank == inst.root) {
    auto data = std::make_shared<std::vector<std::byte>>();
    if (inst.len > 0) data->assign(op.buf, op.buf + inst.len);
    const auto depth = static_cast<sim::TimeNs>(inst.levels.size());
    transfer(depth * cfg_.innet_hop_ns + wire_ns(inst.len),
             [this, k, data] { root_done(k, std::move(*data)); });
    // The root's buffer is reusable as soon as the injection is on the wire.
    sim_.after(cfg_.innet_hop_ns, [this, k] {
      auto it = table_.find(k);
      if (it != table_.end()) finish(k, it->second.root);
    });
  } else if (inst.result_ready) {
    // Straggler: the replication wave already passed; deliver immediately.
    const int r = op.rank;
    sim_.after(0, [this, k, r] { deliver(k, r); });
  }
}

void CombiningEngine::contribute(Key k, int level, int elem,
                                 int slot, std::shared_ptr<std::vector<std::byte>> data) {
  auto it = table_.find(k);
  if (it == table_.end()) {
    // A trailing duplicate outlived its collective; the table entry is gone
    // and the copy is simply discarded.
    ++dup_discards_;
    return;
  }
  Instance& inst = it->second;
  Element& e = inst.levels[static_cast<std::size_t>(level)][static_cast<std::size_t>(elem)];
  if (e.present[static_cast<std::size_t>(slot)]) {
    ++dup_discards_;  // duplicate contribution on an already-filled port
    return;
  }
  if (e.seen == 0) note_table(+1);  // first arrival opens the table entry
  e.present[static_cast<std::size_t>(slot)] = true;
  e.stash[static_cast<std::size_t>(slot)] = std::move(*data);
  if (++e.seen == e.nchildren) element_complete(k, level, elem);
}

void CombiningEngine::element_complete(Key k, int level, int elem) {
  Instance& inst = table_.at(k);
  Element& e = inst.levels[static_cast<std::size_t>(level)][static_cast<std::size_t>(elem)];
  // Deterministic combine: left-to-right in child-port order, which is
  // communicator rank order by construction — never arrival order.
  auto acc = std::make_shared<std::vector<std::byte>>(std::move(e.stash[0]));
  for (int j = 1; j < e.nchildren; ++j) {
    if (inst.combine && inst.len > 0) {
      inst.combine(acc->data(), e.stash[static_cast<std::size_t>(j)].data(), inst.len);
    }
    ++combines_;
  }
  e.stash.clear();
  e.forwarded = true;
  note_table(-1);
  if (telemetry_ != nullptr) {
    // Attribute the fold to the lowest-rank node the element covers.
    int stride = radix_;
    for (int l = 0; l < level; ++l) stride *= radix_;
    const int first_rank = std::min(elem * stride, inst.nranks - 1);
    telemetry_->emit(sim_.now(), inst.tasks[static_cast<std::size_t>(first_rank)],
                     sim::Ev::kInnetCombine, static_cast<std::uint64_t>(e.nchildren),
                     inst.len);
  }
  const sim::TimeNs cost = fold_ns(e.nchildren, inst.len);
  if (level + 1 == static_cast<int>(inst.levels.size())) {
    sim_.after(cost, [this, k, acc] { root_done(k, std::move(*acc)); });
  } else {
    const int parent = elem / radix_;
    const int port = elem % radix_;
    transfer(cost + cfg_.innet_hop_ns,
             [this, k, level, parent, port, acc] {
               contribute(k, level + 1, parent, port, acc);
             });
  }
}

void CombiningEngine::root_done(Key k, std::vector<std::byte>&& result) {
  auto it = table_.find(k);
  if (it == table_.end()) return;  // duplicate of an already-finished spine climb
  Instance& inst = it->second;
  if (inst.result_ready) {
    ++dup_discards_;
    return;
  }
  inst.result = std::move(result);
  inst.result_ready = true;
  ++ops_;
  // Replicate down every subtree in parallel: each copy pays the downward
  // pipeline latency plus one serialization onto its host link.
  const auto depth = static_cast<sim::TimeNs>(inst.levels.size());
  const sim::TimeNs down = depth * cfg_.innet_hop_ns + wire_ns(inst.len);
  int fanout = 0;
  for (int r = 0; r < inst.nranks; ++r) {
    if (!inst.reduce_phase && r == inst.root) continue;  // bcast root keeps its copy
    const RankSlot& slot = inst.ranks[static_cast<std::size_t>(r)];
    if (!slot.registered || slot.delivered) continue;
    ++fanout;
    transfer(down, [this, k, r] { deliver(k, r); });
  }
  replications_ += fanout;
  if (telemetry_ != nullptr) {
    telemetry_->emit(sim_.now(), inst.tasks[0], sim::Ev::kInnetReplicate,
                     static_cast<std::uint64_t>(fanout), inst.len);
  }
  if (inst.delivered == inst.nranks) retire(k, inst);
}

void CombiningEngine::deliver(Key k, int rank) {
  auto it = table_.find(k);
  if (it == table_.end()) {
    ++dup_discards_;
    return;
  }
  Instance& inst = it->second;
  RankSlot& slot = inst.ranks[static_cast<std::size_t>(rank)];
  if (slot.delivered) {
    ++dup_discards_;  // a duplicated replication copy
    return;
  }
  if (inst.len > 0) std::memcpy(slot.buf, inst.result.data(), inst.len);
  finish(k, rank);
}

void CombiningEngine::finish(Key k, int rank) {
  Instance& inst = table_.at(k);
  RankSlot& slot = inst.ranks[static_cast<std::size_t>(rank)];
  if (slot.delivered) return;
  slot.delivered = true;
  ++inst.delivered;
  auto done = std::move(slot.on_done);
  const bool last = inst.delivered == inst.nranks &&
                    (inst.result_ready || !inst.reduce_phase);
  if (last && inst.result_ready) retire(k, inst);
  if (done) done();
}

void CombiningEngine::retire(Key k, Instance&) { table_.erase(k); }

void CombiningEngine::transfer(sim::TimeNs delay, std::function<void()> fn) {
  sim::TimeNs t = delay;
  // Fixed draw order — drop(s), jitter, dup — so a given seed yields a
  // bit-identical fault schedule. No knob set, no draw made: clean runs
  // consume no randomness and stay bit-identical with the pre-engine fabric.
  if (cfg_.packet_drop_rate > 0.0) {
    int tries = 0;  // bounded so a pathological rate ~1.0 cannot livelock
    while (tries++ < 64 && rng_.chance(cfg_.packet_drop_rate)) {
      ++retransmits_;
      t += cfg_.innet_retry_ns;  // link-level retry, not an end-to-end timeout
    }
  }
  if (cfg_.packet_jitter_ns > 0) {
    t += static_cast<sim::TimeNs>(
        rng_.next_below(static_cast<std::uint32_t>(cfg_.packet_jitter_ns)));
  }
  const bool dup = cfg_.packet_dup_rate > 0.0 && rng_.chance(cfg_.packet_dup_rate);
  if (dup) {
    auto copy = fn;
    sim_.after(t + cfg_.innet_hop_ns, std::move(copy));  // the duplicate trails
  }
  sim_.after(t, std::move(fn));
}

}  // namespace sp::net
