#include "lapi/lapi.hpp"

#include <bit>
#include <cassert>
#include <cstdio>
#include <cmath>
#include <cstring>
#include <utility>

namespace sp::lapi {

namespace {
[[nodiscard]] sim::TimeNs copy_cost(const sim::MachineConfig& cfg, std::size_t bytes) {
  return cfg.copy_call_ns +
         static_cast<sim::TimeNs>(std::llround(cfg.copy_ns_per_byte * static_cast<double>(bytes)));
}
}  // namespace

Lapi::Lapi(sim::NodeRuntime& node, hal::Hal& hal, LapiGroup& group, int task_id)
    : node_(node), hal_(hal), group_(group), task_id_(task_id),
      links_(static_cast<std::size_t>(group.size())) {
  group_.attach(task_id, this);
  hal_.register_protocol(hal::kProtoLapi,
                         [this](int src, std::span<const std::byte> b) { on_hal_packet(src, b); });
  // No global send-space sweep: each ReliableLink arms a one-shot HAL waiter
  // when (and only when) it actually stalls on send-buffer backpressure.
  // Handler id 0 is reserved for LAPI-internal control (gfence barrier).
  internal_barrier_handler_ = register_header_handler(
      [](int, const std::byte*, std::size_t, std::size_t) { return HeaderHandlerResult{}; });

  // Handler id 1: vector put. The user header carries the block table; the
  // payload is the packed concatenation, assembled into a scratch buffer and
  // scattered by the (predefined) completion handler.
  internal_vec_put_handler_ = register_header_handler(
      [this](int, const std::byte* uhdr, std::size_t, std::size_t total) {
        std::uint32_t n = 0;
        std::memcpy(&n, uhdr, 4);
        std::vector<std::pair<Token, std::uint64_t>> table(n);
        std::memcpy(table.data(), uhdr + 4, n * sizeof(table[0]));
        auto scratch = std::make_shared<std::vector<std::byte>>(total);
        HeaderHandlerResult res;
        res.buffer = scratch->data();
        res.inline_completion = true;
        res.completion = [this, table = std::move(table), scratch](void*) {
          std::size_t off = 0;
          std::size_t bytes = 0;
          for (const auto& [addr, len] : table) {
            std::memcpy(reinterpret_cast<std::byte*>(addr), scratch->data() + off, len);
            off += len;
            bytes += len;
          }
          node_.cpu.charge(node_.sim, copy_cost(node_.cfg, bytes));  // the scatter
        };
        return res;
      });

  // Handler id 2: vector-get reply; scatter into the pending request's
  // destination blocks at the origin, then fire its org counter.
  internal_getv_reply_handler_ = register_header_handler(
      [this](int, const std::byte* uhdr, std::size_t, std::size_t total) {
        std::uint32_t req_id = 0;
        std::memcpy(&req_id, uhdr, 4);
        auto scratch = std::make_shared<std::vector<std::byte>>(total);
        HeaderHandlerResult res;
        res.buffer = scratch->data();
        res.inline_completion = true;
        res.completion = [this, req_id, scratch](void*) {
          auto it = pending_getv_.find(req_id);
          assert(it != pending_getv_.end() && "getv reply for unknown request");
          std::size_t off = 0;
          std::size_t bytes = 0;
          for (std::size_t k = 0; k < it->second.dsts.size(); ++k) {
            std::memcpy(it->second.dsts[k], scratch->data() + off, it->second.lens[k]);
            off += it->second.lens[k];
            bytes += it->second.lens[k];
          }
          node_.cpu.charge(node_.sim, copy_cost(node_.cfg, bytes));
          bump_local(it->second.org);
          pending_getv_.erase(it);
        };
        return res;
      });
}

ReliableLink& Lapi::link(int peer) {
  auto& l = links_[static_cast<std::size_t>(peer)];
  if (!l) {
    l = std::make_unique<ReliableLink>(node_, hal_, peer);
  }
  return *l;
}

int Lapi::register_header_handler(HeaderHandler fn) {
  handlers_.push_back(std::move(fn));
  return static_cast<int>(handlers_.size()) - 1;
}

void Lapi::maybe_app_charge(sim::TimeNs cost) {
  if (in_callback_ || in_header_handler_) return;
  node_.app_charge(cost);
}

void Lapi::check_not_in_header_handler(const char* fn) const {
  if (in_header_handler_) {
    throw LapiError(std::string("LAPI function called from a header handler: ") + fn);
  }
}

// --------------------------------------------------------------------------
// Origin-side operations
// --------------------------------------------------------------------------

void Lapi::amsend(int tgt, int handler_id, const void* uhdr, std::size_t uhdr_len,
                  const void* udata, std::size_t udata_len, Token tgt_cntr, Cntr* org_cntr,
                  Cntr* cmpl_cntr) {
  check_not_in_header_handler("LAPI_Amsend");
  assert(handler_id >= 0 && "unregistered header handler");
  maybe_app_charge(node_.cfg.lapi_call_overhead_ns);

  ReliableLink::Message m;
  m.meta.kind = static_cast<std::uint8_t>(Kind::kAm);
  m.meta.msg_id = next_msg_id_++;
  m.meta.origin = static_cast<std::uint32_t>(task_id_);
  m.meta.handler_or_addr = static_cast<Token>(handler_id);
  m.meta.tgt_cntr = tgt_cntr;
  m.meta.cmpl_cntr = token_of(cmpl_cntr);
  if (uhdr_len > 0) {
    const auto* p = static_cast<const std::byte*>(uhdr);
    m.uhdr.assign(p, p + uhdr_len);
  }
  m.data = static_cast<const std::byte*>(udata);
  m.len = udata_len;
  if (org_cntr != nullptr) {
    m.on_origin_done = [this, org_cntr] { bump_local(org_cntr); };
  }
  ++messages_sent_;
  SP_TELEM(node_, sim::Ev::kAmSend, static_cast<std::uint64_t>(tgt), udata_len);
  node_.trace_event("lapi.amsend", [&] {
    char b[64];
    std::snprintf(b, sizeof b, "tgt=%d handler=%d len=%zu", tgt, handler_id, udata_len);
    return std::string(b);
  });
  link(tgt).submit(std::move(m));
}

void Lapi::put(int tgt, Token tgt_addr, const void* src, std::size_t len, Token tgt_cntr,
               Cntr* org_cntr, Cntr* cmpl_cntr) {
  check_not_in_header_handler("LAPI_Put");
  maybe_app_charge(node_.cfg.lapi_call_overhead_ns);

  ReliableLink::Message m;
  m.meta.kind = static_cast<std::uint8_t>(Kind::kPut);
  m.meta.msg_id = next_msg_id_++;
  m.meta.origin = static_cast<std::uint32_t>(task_id_);
  m.meta.handler_or_addr = tgt_addr;
  m.meta.tgt_cntr = tgt_cntr;
  m.meta.cmpl_cntr = token_of(cmpl_cntr);
  m.data = static_cast<const std::byte*>(src);
  m.len = len;
  if (org_cntr != nullptr) {
    m.on_origin_done = [this, org_cntr] { bump_local(org_cntr); };
  }
  ++messages_sent_;
  link(tgt).submit(std::move(m));
}

void Lapi::get(int tgt, Token tgt_addr, void* origin_buf, std::size_t len, Token tgt_cntr,
               Cntr* org_cntr) {
  check_not_in_header_handler("LAPI_Get");
  maybe_app_charge(node_.cfg.lapi_call_overhead_ns);

  PktHdr h;
  h.kind = static_cast<std::uint8_t>(Kind::kGetReq);
  h.origin = static_cast<std::uint32_t>(task_id_);
  h.handler_or_addr = tgt_addr;
  h.aux = token_of(static_cast<std::byte*>(origin_buf));
  h.org_cntr = token_of(org_cntr);
  h.tgt_cntr = tgt_cntr;
  h.total_len = 0;  // the request itself carries no data
  h.aux2 = static_cast<Token>(len);
  ++messages_sent_;
  send_internal(tgt, h, {});
}

void Lapi::rmw(int tgt, RmwOp op, Token tgt_var, std::int64_t in_val, std::int64_t cas_compare,
               std::int64_t* prev_out, Cntr* org_cntr) {
  check_not_in_header_handler("LAPI_Rmw");
  maybe_app_charge(node_.cfg.lapi_call_overhead_ns);

  PktHdr h;
  h.kind = static_cast<std::uint8_t>(Kind::kRmwReq);
  h.origin = static_cast<std::uint32_t>(task_id_);
  h.handler_or_addr = tgt_var;
  h.op = static_cast<std::uint8_t>(op);
  h.aux = std::bit_cast<Token>(in_val);
  h.aux2 = std::bit_cast<Token>(cas_compare);
  h.tgt_cntr = token_of(prev_out);  // repurposed: where the reply writes prev
  h.org_cntr = token_of(org_cntr);
  ++messages_sent_;
  send_internal(tgt, h, {});
}

void Lapi::putv(int tgt, int n, const Token* tgt_addrs, const void* const* srcs,
                const std::size_t* lens, Token tgt_cntr, Cntr* org_cntr, Cntr* cmpl_cntr) {
  check_not_in_header_handler("LAPI_Putv");
  assert(n >= 0 && n <= kMaxVecBlocks && "block table must fit one packet");
  maybe_app_charge(node_.cfg.lapi_call_overhead_ns);

  // Block table (user header) + packed payload (the origin-side gather).
  std::vector<std::byte> uhdr(4 + static_cast<std::size_t>(n) * 16);
  const auto n32 = static_cast<std::uint32_t>(n);
  std::memcpy(uhdr.data(), &n32, 4);
  std::size_t total = 0;
  for (int k = 0; k < n; ++k) {
    const std::uint64_t addr = tgt_addrs[k];
    const std::uint64_t len = lens[k];
    std::memcpy(uhdr.data() + 4 + static_cast<std::size_t>(k) * 16, &addr, 8);
    std::memcpy(uhdr.data() + 4 + static_cast<std::size_t>(k) * 16 + 8, &len, 8);
    total += lens[k];
  }
  std::vector<std::byte> packed(total);
  std::size_t off = 0;
  for (int k = 0; k < n; ++k) {
    std::memcpy(packed.data() + off, srcs[k], lens[k]);
    off += lens[k];
  }
  maybe_app_charge(copy_cost(node_.cfg, total));  // the gather

  ReliableLink::Message m;
  m.meta.kind = static_cast<std::uint8_t>(Kind::kAm);
  m.meta.msg_id = next_msg_id_++;
  m.meta.origin = static_cast<std::uint32_t>(task_id_);
  m.meta.handler_or_addr = static_cast<Token>(internal_vec_put_handler_);
  m.meta.tgt_cntr = tgt_cntr;
  m.meta.cmpl_cntr = token_of(cmpl_cntr);
  m.uhdr = std::move(uhdr);
  m.owned = std::move(packed);
  if (org_cntr != nullptr) {
    m.on_origin_done = [this, org_cntr] { bump_local(org_cntr); };
  }
  ++messages_sent_;
  link(tgt).submit(std::move(m));
}

void Lapi::getv(int tgt, int n, const Token* tgt_addrs, void* const* dsts,
                const std::size_t* lens, Cntr* org_cntr) {
  check_not_in_header_handler("LAPI_Getv");
  assert(n >= 0 && n <= kMaxVecBlocks && "block table must fit one packet");
  maybe_app_charge(node_.cfg.lapi_call_overhead_ns);

  const std::uint32_t req_id = next_getv_id_++;
  GetvPending pend;
  pend.dsts.assign(dsts, dsts + n);
  pend.lens.assign(lens, lens + n);
  pend.org = org_cntr;
  pending_getv_.emplace(req_id, std::move(pend));

  std::vector<std::byte> table(static_cast<std::size_t>(n) * 16);
  for (int k = 0; k < n; ++k) {
    const std::uint64_t addr = tgt_addrs[k];
    const std::uint64_t len = lens[k];
    std::memcpy(table.data() + static_cast<std::size_t>(k) * 16, &addr, 8);
    std::memcpy(table.data() + static_cast<std::size_t>(k) * 16 + 8, &len, 8);
  }
  PktHdr h;
  h.kind = static_cast<std::uint8_t>(Kind::kGetvReq);
  h.origin = static_cast<std::uint32_t>(task_id_);
  h.aux = static_cast<Token>(req_id);
  h.aux2 = static_cast<Token>(n);
  ++messages_sent_;
  send_internal(tgt, h, std::move(table));
}

void Lapi::handle_getv_request(const PktHdr& h, const std::byte* body) {
  const auto n = static_cast<std::size_t>(h.aux2);
  // Gather the requested blocks (target-side read).
  std::size_t total = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> table(n);
  std::memcpy(table.data(), body, n * 16);
  for (const auto& [addr, len] : table) total += len;
  std::vector<std::byte> packed(total);
  std::size_t off = 0;
  for (const auto& [addr, len] : table) {
    std::memcpy(packed.data() + off, reinterpret_cast<const std::byte*>(addr), len);
    off += len;
  }
  node_.cpu.charge(node_.sim, copy_cost(node_.cfg, total));

  // Reply as an internal active message to the origin's scatter handler.
  ReliableLink::Message m;
  m.meta.kind = static_cast<std::uint8_t>(Kind::kAm);
  m.meta.msg_id = next_msg_id_++;
  m.meta.origin = static_cast<std::uint32_t>(task_id_);
  m.meta.handler_or_addr = static_cast<Token>(internal_getv_reply_handler_);
  m.uhdr.resize(4);
  const auto req_id = static_cast<std::uint32_t>(h.aux);
  std::memcpy(m.uhdr.data(), &req_id, 4);
  m.owned = std::move(packed);
  link(static_cast<int>(h.origin)).submit(std::move(m));
}

void Lapi::send_internal(int tgt, PktHdr meta, std::vector<std::byte> owned_data) {
  meta.msg_id = next_msg_id_++;
  ReliableLink::Message m;
  m.meta = meta;
  m.owned = std::move(owned_data);
  link(tgt).submit(std::move(m));
}

// --------------------------------------------------------------------------
// Counters
// --------------------------------------------------------------------------

void Lapi::setcntr(Cntr& c, int value) {
  maybe_app_charge(node_.cfg.lapi_call_overhead_ns / 4);
  c.value = value;
  c.cond.notify_all(node_.sim);
}

int Lapi::getcntr(const Cntr& c) {
  maybe_app_charge(node_.cfg.lapi_call_overhead_ns / 4);
  return c.value;
}

void Lapi::waitcntr(Cntr& c, int value) {
  check_not_in_header_handler("LAPI_Waitcntr");
  if (in_callback_) {
    throw LapiError("LAPI_Waitcntr may not block inside a completion handler");
  }
  maybe_app_charge(node_.cfg.lapi_call_overhead_ns / 4);
  assert(node_.thread != nullptr);
  while (c.value < value) {
    c.cond.wait(*node_.thread);
  }
  c.value -= value;
}

void Lapi::bump_local(Cntr* c) {
  if (c == nullptr) return;
  node_.publish([this, c] {
    ++c->value;
    c->cond.notify_all(node_.sim);
    if (c->on_bump) c->on_bump();
  });
}

void Lapi::bump_local_token(Token t) {
  bump_local(reinterpret_cast<Cntr*>(t));
}

// --------------------------------------------------------------------------
// Utility: address exchange, fences, environment
// --------------------------------------------------------------------------

std::vector<Token> Lapi::address_init(std::uint64_t exchange_id, Token mine) {
  check_not_in_header_handler("LAPI_Address_init");
  maybe_app_charge(node_.cfg.lapi_call_overhead_ns);
  auto& ex = group_.exchanges_[exchange_id];
  if (ex.slots.empty()) ex.slots.resize(static_cast<std::size_t>(group_.size()), 0);
  ex.slots[static_cast<std::size_t>(task_id_)] = mine;
  ++ex.contributed;
  if (ex.contributed == group_.size()) {
    ex.done.notify_all(node_.sim);
  } else {
    assert(node_.thread != nullptr);
    ex.done.wait_until(*node_.thread, [&ex, this] { return ex.contributed >= group_.size(); });
  }
  return ex.slots;
}

void Lapi::fence(int tgt) {
  check_not_in_header_handler("LAPI_Fence");
  maybe_app_charge(node_.cfg.lapi_call_overhead_ns);
  auto& l = link(tgt);
  assert(node_.thread != nullptr);
  l.drained_cond().wait_until(*node_.thread, [&l] { return l.drained(); });
}

void Lapi::gfence() {
  check_not_in_header_handler("LAPI_Gfence");
  const int n = group_.size();
  for (int t = 0; t < n; ++t) {
    if (t != task_id_) fence(t);
  }
  // Dissemination barrier over internal 0-data active messages whose target
  // counters are the per-round barrier counters of the peer task.
  int rounds = 0;
  for (int span = 1; span < n; span <<= 1) ++rounds;
  for (int r = 0; r < rounds; ++r) {
    const int partner = (task_id_ + (1 << r)) % n;
    Lapi* peer = group_.task(partner);
    assert(peer != nullptr);
    amsend(partner, internal_barrier_handler_, nullptr, 0, nullptr, 0,
           token_of(&peer->barrier_cntrs_[static_cast<std::size_t>(r)]), nullptr, nullptr);
    waitcntr(barrier_cntrs_[static_cast<std::size_t>(r)], 1);
  }
}

Lapi::Env Lapi::qenv() const {
  Env e;
  e.task_id = task_id_;
  e.num_tasks = group_.size();
  e.interrupt_on = hal_.interrupt_mode();
  e.max_uhdr_bytes = node_.cfg.packet_mtu - 128;
  e.max_data_bytes = static_cast<std::size_t>(1) << 31;
  e.inline_completion_allowed = inline_completion_allowed_;
  return e;
}

void Lapi::senv_interrupt(bool on) {
  maybe_app_charge(node_.cfg.lapi_call_overhead_ns / 4);
  hal_.set_interrupt_mode(on);
}

std::int64_t Lapi::retransmits() const {
  std::int64_t sum = 0;
  for (const auto& l : links_) {
    if (l) sum += l->retransmits();
  }
  return sum;
}

std::int64_t Lapi::duplicate_deliveries() const {
  std::int64_t sum = 0;
  for (const auto& l : links_) {
    if (l) sum += l->duplicates();
  }
  return sum;
}

std::int64_t Lapi::link_packets_sent() const {
  std::int64_t sum = 0;
  for (const auto& l : links_) {
    if (l) sum += l->packets_sent();
  }
  return sum;
}

std::int64_t Lapi::acks_sent() const {
  std::int64_t sum = 0;
  for (const auto& l : links_) {
    if (l) sum += l->acks_sent();
  }
  return sum;
}

std::int64_t Lapi::reacks_coalesced() const {
  std::int64_t sum = 0;
  for (const auto& l : links_) {
    if (l) sum += l->reacks_coalesced();
  }
  return sum;
}

// --------------------------------------------------------------------------
// Target-side dispatch
// --------------------------------------------------------------------------

void Lapi::on_hal_packet(int src, std::span<const std::byte> bytes) {
  assert(bytes.size() >= sizeof(PktHdr));
  const PktHdr h = parse_hdr(bytes);
  const auto kind = static_cast<Kind>(h.kind);

  if (kind == Kind::kAck) {
    link(src).on_ack(h.pkt_seq);
    return;
  }
  if (!link(src).accept(h.pkt_seq)) {
    return;  // duplicate (retransmission already delivered)
  }
  node_.cpu.charge(node_.sim, node_.cfg.lapi_dispatch_packet_ns);

  switch (kind) {
    case Kind::kAm:
    case Kind::kPut:
    case Kind::kGetRep:
      on_data_packet(h, bytes);
      break;
    case Kind::kGetReq:
      handle_get_request(h);
      break;
    case Kind::kGetvReq:
      handle_getv_request(h, bytes.data() + sizeof(PktHdr) + h.uhdr_len);
      break;
    case Kind::kRmwReq:
      handle_rmw_request(h);
      break;
    case Kind::kRmwRep: {
      if (h.tgt_cntr != 0) {
        *reinterpret_cast<std::int64_t*>(h.tgt_cntr) = std::bit_cast<std::int64_t>(h.aux);
      }
      bump_local_token(h.org_cntr);
      break;
    }
    case Kind::kCmplNotify:
      bump_local_token(h.handler_or_addr);
      break;
    case Kind::kAck:
      break;  // handled above
  }
}

void Lapi::handle_get_request(const PktHdr& h) {
  // Source the data and ship it back as a Put into the origin's buffer. The
  // origin-side org counter rides along as the reply's target counter (it is
  // bumped at the reply's destination — the origin).
  const auto len = static_cast<std::size_t>(h.aux2);
  PktHdr rep;
  rep.kind = static_cast<std::uint8_t>(Kind::kGetRep);
  rep.origin = static_cast<std::uint32_t>(task_id_);
  rep.handler_or_addr = h.aux;    // origin buffer address
  rep.tgt_cntr = h.org_cntr;      // bumped at origin on completion
  const auto* src = reinterpret_cast<const std::byte*>(h.handler_or_addr);
  std::vector<std::byte> data(src, src + len);
  bump_local_token(h.tgt_cntr);   // data has been sourced at the target
  send_internal(static_cast<int>(h.origin), rep, std::move(data));
}

void Lapi::handle_rmw_request(const PktHdr& h) {
  auto* var = reinterpret_cast<std::int64_t*>(h.handler_or_addr);
  const auto in_val = std::bit_cast<std::int64_t>(h.aux);
  const auto compare = std::bit_cast<std::int64_t>(h.aux2);
  const std::int64_t prev = *var;
  switch (static_cast<RmwOp>(h.op)) {
    case RmwOp::kFetchAndAdd: *var = prev + in_val; break;
    case RmwOp::kFetchAndOr: *var = prev | in_val; break;
    case RmwOp::kSwap: *var = in_val; break;
    case RmwOp::kCompareAndSwap:
      if (prev == compare) *var = in_val;
      break;
  }
  PktHdr rep;
  rep.kind = static_cast<std::uint8_t>(Kind::kRmwRep);
  rep.origin = static_cast<std::uint32_t>(task_id_);
  rep.tgt_cntr = h.tgt_cntr;  // where to write prev at the origin
  rep.org_cntr = h.org_cntr;
  rep.aux = std::bit_cast<Token>(prev);
  send_internal(static_cast<int>(h.origin), rep, {});
}

void Lapi::on_data_packet(const PktHdr& h, std::span<const std::byte> payload) {
  const auto key = std::make_pair(h.origin, h.msg_id);
  auto [it, created] = reass_.try_emplace(key);
  Reassembly& r = it->second;
  if (created) {
    r.total = h.total_len;
    r.meta = h;
  }

  const std::byte* body = payload.data() + sizeof(PktHdr) + h.uhdr_len;
  const auto kind = static_cast<Kind>(h.kind);

  if (kind == Kind::kPut || kind == Kind::kGetRep) {
    if (!r.resolved) {
      r.buffer = reinterpret_cast<std::byte*>(h.handler_or_addr);
      r.resolved = true;
    }
  } else if (kind == Kind::kAm && !r.resolved) {
    if ((h.flags & kFlagFirst) != 0) {
      // Run the header handler (Fig. 2 step 2) in dispatcher context.
      ++header_handlers_run_;
      SP_TELEM(node_, sim::Ev::kHeaderHandler, h.origin, h.total_len);
      node_.trace_event("lapi.header_handler", [&] {
        char b[64];
        std::snprintf(b, sizeof b, "origin=%u msg=%llu len=%u", h.origin,
                      static_cast<unsigned long long>(h.msg_id), h.total_len);
        return std::string(b);
      });
      node_.cpu.charge(node_.sim, node_.cfg.header_handler_ns);
      const auto id = static_cast<std::size_t>(h.handler_or_addr);
      assert(id < handlers_.size() && "unknown header handler id");
      in_header_handler_ = true;
      HeaderHandlerResult res =
          handlers_[id](static_cast<int>(h.origin),
                        h.uhdr_len > 0 ? payload.data() + sizeof(PktHdr) : nullptr,
                        h.uhdr_len, h.total_len);
      in_header_handler_ = false;
      r.buffer = res.buffer;
      r.completion = std::move(res.completion);
      r.cookie = res.cookie;
      r.inline_completion = res.inline_completion;
      r.resolved = true;
      r.meta = h;  // the first packet carries the authoritative tokens
      // Drain any packets that overtook the first one across routes.
      for (auto& [off, bytes] : r.stash) {
        place_data(r, off, bytes.data(), bytes.size());
      }
      r.stash.clear();
    } else {
      // Arrived before the first packet: stash until the header handler runs.
      node_.cpu.charge(node_.sim, copy_cost(node_.cfg, h.data_len));
      r.stash.emplace_back(h.offset,
                           std::vector<std::byte>(body, body + h.data_len));
      return;
    }
  }

  place_data(r, h.offset, body, h.data_len);
  if (r.resolved && r.received >= r.total) {
    finish_message(h.origin, h.msg_id);
  }
}

void Lapi::place_data(Reassembly& r, std::uint32_t offset, const std::byte* data,
                      std::size_t len) {
  if (len > 0) {
    // The single LAPI target-side copy: HAL receive buffer -> user buffer,
    // directly at the right offset (out-of-order packets need no reordering).
    node_.cpu.charge(node_.sim, copy_cost(node_.cfg, len));
    if (r.buffer != nullptr) {
      std::memcpy(r.buffer + offset, data, len);
    }
  }
  r.received += len;
}

void Lapi::finish_message(std::uint64_t key_origin, std::uint64_t msg_id) {
  const auto key = std::make_pair(static_cast<std::uint32_t>(key_origin), msg_id);
  auto it = reass_.find(key);
  assert(it != reass_.end());
  Reassembly r = std::move(it->second);
  reass_.erase(it);

  auto post_steps = [this, meta = r.meta] {
    bump_local_token(meta.tgt_cntr);
    if (meta.cmpl_cntr != 0) {
      PktHdr n;
      n.kind = static_cast<std::uint8_t>(Kind::kCmplNotify);
      n.origin = static_cast<std::uint32_t>(task_id_);
      n.handler_or_addr = meta.cmpl_cntr;
      send_internal(static_cast<int>(meta.origin), n, {});
    }
  };

  if (r.completion) {
    if (r.inline_completion && inline_completion_allowed_) {
      // Enhanced LAPI (§5.3): predefined completion handler in dispatcher
      // context — no thread switch on the critical path.
      ++completion_inline_runs_;
      SP_TELEM(node_, sim::Ev::kCompletionInline);
      node_.trace_event("lapi.completion.inline", [] { return std::string(); });
      node_.cpu.charge(node_.sim, node_.cfg.completion_inline_ns);
      in_callback_ = true;
      r.completion(r.cookie);
      in_callback_ = false;
      post_steps();
    } else {
      // Stock LAPI: completion handlers run on a separate thread; the two
      // context switches dominate the Base MPI-LAPI's overhead (§5.1).
      ++completion_thread_dispatches_;
      SP_TELEM(node_, sim::Ev::kCompletionThread);
      node_.trace_event("lapi.completion.thread", [] { return std::string(); });
      node_.sim.after(node_.cfg.completion_thread_switch_ns, sim::sched_node_key(node_.node),
                      [this, completion = std::move(r.completion), cookie = r.cookie,
                       post_steps]() mutable {
                        in_callback_ = true;
                        completion(cookie);
                        in_callback_ = false;
                        post_steps();
                      });
    }
  } else {
    post_steps();
  }
}

}  // namespace sp::lapi
