// LAPI counters (org_cntr / tgt_cntr / cmpl_cntr of Fig. 2).
#pragma once

#include <functional>

#include "sim/rank_thread.hpp"

namespace sp::lapi {

/// A LAPI counter: an integer a task can wait on. Counters live in one task's
/// address space; remote increments arrive via the LAPI transport and are
/// published through that node's WakeGate.
struct Cntr {
  int value = 0;
  sim::SimCondition cond;
  /// Optional local hook run (after the increment, in publication context)
  /// whenever the transport bumps this counter. Simulator-side convenience
  /// for layers that would otherwise poll the counter.
  std::function<void()> on_bump;

  Cntr() = default;
  Cntr(const Cntr&) = delete;
  Cntr& operator=(const Cntr&) = delete;
};

}  // namespace sp::lapi
