// LAPI wire format: the per-packet header and message kinds.
//
// Every LAPI packet carries a full PktHdr (serialized verbatim) so any packet
// of a message can create reassembly state when packets arrive out of order
// across the four switch routes. Time is charged for the *modeled* header
// size (MachineConfig::lapi_header_bytes), not the struct size.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace sp::lapi {

enum class Kind : std::uint8_t {
  kAm = 1,        ///< LAPI_Amsend data (first packet carries the user header)
  kPut = 2,       ///< LAPI_Put data (target address resolves the buffer)
  kGetReq = 3,    ///< LAPI_Get request (single packet)
  kGetRep = 4,    ///< LAPI_Get reply data (a Put into the origin buffer)
  kRmwReq = 5,    ///< LAPI_Rmw request (single packet)
  kRmwRep = 6,    ///< LAPI_Rmw reply (single packet)
  kCmplNotify = 7,///< Internal: bump the origin-side completion counter
  kAck = 8,       ///< Transport acknowledgement (unsequenced)
  kGetvReq = 9,   ///< LAPI_Getv request (single packet carrying a block table)
};

enum Flags : std::uint8_t {
  kFlagFirst = 1,  ///< Carries the user header (offset 0 packet of an Am)
};

/// Counter/address tokens are raw pointers in the single simulator address
/// space, exchanged up-front via LAPI_Address_init exactly as on the real
/// machine (where they are virtual addresses in the peer task).
using Token = std::uint64_t;

/// Reconstruct a full 64-bit sequence number from its 32-bit wire form,
/// choosing the value congruent to `wire` (mod 2^32) nearest to `ref`
/// (RFC 1982-style serial-number arithmetic). The link window is tiny
/// compared to the 2^31 ambiguity radius, so reliability bookkeeping keeps
/// working when the 32-bit wire counter wraps.
[[nodiscard]] constexpr std::uint64_t unwrap_seq(std::uint64_t ref, std::uint32_t wire) noexcept {
  constexpr std::uint64_t kSpan = 1ULL << 32;
  constexpr std::uint64_t kHalf = 1ULL << 31;
  std::uint64_t candidate = (ref & ~(kSpan - 1)) | wire;
  if (candidate + kHalf < ref) return candidate + kSpan;
  if (candidate > ref + kHalf && candidate >= kSpan) return candidate - kSpan;
  return candidate;
}

struct PktHdr {
  std::uint64_t msg_id = 0;    ///< Per-origin-task unique message id.
  std::uint32_t pkt_seq = 0;   ///< Per (origin->target) reliability sequence.
  std::uint32_t offset = 0;    ///< Byte offset of this packet's data.
  std::uint32_t data_len = 0;  ///< Data bytes in this packet.
  std::uint32_t total_len = 0; ///< Total message data length.
  std::uint8_t kind = 0;
  std::uint8_t flags = 0;   ///< Per-packet flags; rewritten by the link layer.
  std::uint8_t op = 0;      ///< Kind-specific opcode (e.g. the Rmw operation).
  std::uint8_t pad_ = 0;
  std::uint16_t uhdr_len = 0;
  std::uint32_t origin = 0;    ///< Origin task id.
  Token handler_or_addr = 0;   ///< Am: header-handler id. Put/GetRep: target address.
  Token tgt_cntr = 0;          ///< Target counter (target address space).
  Token org_cntr = 0;          ///< Origin counter token (used by replies).
  Token cmpl_cntr = 0;         ///< Completion counter (origin address space).
  Token aux = 0;               ///< GetReq: origin buffer. Rmw: operand/out ptr.
  Token aux2 = 0;              ///< Rmw: extra operand.
};

inline constexpr std::size_t kPktHdrBytes = sizeof(PktHdr);

inline void append_hdr(std::vector<std::byte>& out, const PktHdr& h) {
  const auto* p = reinterpret_cast<const std::byte*>(&h);
  out.insert(out.end(), p, p + sizeof(PktHdr));
}

[[nodiscard]] inline PktHdr parse_hdr(std::span<const std::byte> in) {
  PktHdr h;
  std::memcpy(&h, in.data(), sizeof(PktHdr));
  return h;
}

}  // namespace sp::lapi
