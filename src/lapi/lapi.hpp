// LAPI: the Low-level Application Programming Interface (Shah et al.,
// IPPS'98), reimplemented over the simulated SP HAL.
//
// Provides the complete Table-1 function set of the paper:
//   LAPI_Init/Term        -> construction / destruction (Machine-managed)
//   LAPI_Put, LAPI_Get    -> put(), get()
//   LAPI_Amsend           -> amsend() with header + completion handlers
//   LAPI_Rmw              -> rmw()
//   LAPI_Setcntr/Getcntr/Waitcntr -> setcntr()/getcntr()/waitcntr()
//   LAPI_Address_init     -> address_init()
//   LAPI_Fence/Gfence     -> fence()/gfence()
//   LAPI_Qenv/Senv        -> qenv()/senv_*()
//
// Semantics follow the paper's Fig. 2: the first packet of an Amsend runs the
// registered *header handler* at the target, which returns the buffer to
// reassemble into plus an optional *completion handler*. Stock LAPI executes
// completion handlers on a separate thread (modeled as the
// completion_thread_switch_ns critical-path cost); the paper's "Enhanced
// LAPI" modification (§5.3) allows predefined completion handlers to run
// inline in dispatcher context — enabled per-instance with
// set_inline_completion_allowed(true).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "hal/hal.hpp"
#include "lapi/counter.hpp"
#include "lapi/reliable_link.hpp"
#include "lapi/wire.hpp"
#include "sim/node_runtime.hpp"

namespace sp::lapi {

/// Raised on LAPI usage errors (e.g. LAPI calls from a header handler).
class LapiError : public std::runtime_error {
 public:
  explicit LapiError(const std::string& what) : std::runtime_error(what) {}
};

enum class RmwOp : std::uint8_t {
  kFetchAndAdd = 1,
  kFetchAndOr = 2,
  kSwap = 3,
  kCompareAndSwap = 4,
};

class Lapi;

/// Shared wiring for one machine's LAPI tasks: peer table plus the
/// LAPI_Address_init exchange rendezvous.
class LapiGroup {
 public:
  explicit LapiGroup(int num_tasks) : tasks_(static_cast<std::size_t>(num_tasks)) {}

  void attach(int task, Lapi* l) { tasks_[static_cast<std::size_t>(task)] = l; }
  [[nodiscard]] Lapi* task(int t) const { return tasks_[static_cast<std::size_t>(t)]; }
  [[nodiscard]] int size() const noexcept { return static_cast<int>(tasks_.size()); }

 private:
  friend class Lapi;
  struct Exchange {
    std::vector<Token> slots;
    int contributed = 0;
    sim::SimCondition done;
  };
  std::map<std::uint64_t, Exchange> exchanges_;
  std::vector<Lapi*> tasks_;
};

class Lapi {
 public:
  /// Completion handler, run after the whole message is in the target buffer.
  using CompletionFn = std::function<void(void* cookie)>;

  /// What a header handler returns (Fig. 2 step 3).
  struct HeaderHandlerResult {
    std::byte* buffer = nullptr;   ///< Where to assemble the message data.
    CompletionFn completion;       ///< Optional completion handler.
    void* cookie = nullptr;        ///< Passed to the completion handler.
    /// Enhanced-LAPI: run the (predefined) completion handler inline in the
    /// dispatcher instead of on the completion-handler thread. Honoured only
    /// when the instance allows inline completion (§5.3).
    bool inline_completion = false;
  };

  /// Header handler, run in dispatcher context when the first packet of an
  /// Amsend arrives (Fig. 2 step 2). LAPI calls are forbidden inside.
  using HeaderHandler = std::function<HeaderHandlerResult(
      int origin, const std::byte* uhdr, std::size_t uhdr_len, std::size_t total_len)>;

  struct Env {
    int task_id = 0;
    int num_tasks = 0;
    bool interrupt_on = false;
    std::size_t max_uhdr_bytes = 0;
    std::size_t max_data_bytes = 0;
    bool inline_completion_allowed = false;
  };

  Lapi(sim::NodeRuntime& node, hal::Hal& hal, LapiGroup& group, int task_id);

  Lapi(const Lapi&) = delete;
  Lapi& operator=(const Lapi&) = delete;

  // --- handler registration (SPMD: same order on every task) ---
  [[nodiscard]] int register_header_handler(HeaderHandler fn);

  // --- communication (Table 1) ---
  /// LAPI_Amsend: active-message send. `tgt_cntr` is a Token for a counter in
  /// the *target's* address space (from address_init), or 0.
  void amsend(int tgt, int handler_id, const void* uhdr, std::size_t uhdr_len,
              const void* udata, std::size_t udata_len, Token tgt_cntr, Cntr* org_cntr,
              Cntr* cmpl_cntr);

  /// LAPI_Put: one-sided write of `len` bytes to `tgt_addr` (a Token for
  /// memory in the target's address space).
  void put(int tgt, Token tgt_addr, const void* src, std::size_t len, Token tgt_cntr,
           Cntr* org_cntr, Cntr* cmpl_cntr);

  /// LAPI_Get: one-sided read of `len` bytes from `tgt_addr` into `origin_buf`.
  /// org_cntr increments when the data has landed locally; tgt_cntr (remote)
  /// when the target has sourced it.
  void get(int tgt, Token tgt_addr, void* origin_buf, std::size_t len, Token tgt_cntr,
           Cntr* org_cntr);

  /// LAPI_Rmw: remote atomic on an int64 at `tgt_var`. `prev_out` (optional)
  /// receives the pre-op value once org_cntr fires.
  void rmw(int tgt, RmwOp op, Token tgt_var, std::int64_t in_val, std::int64_t cas_compare,
           std::int64_t* prev_out, Cntr* org_cntr);

  /// LAPI_Putv-style vector put: `n` blocks, local `srcs[i]`/`lens[i]` to
  /// remote `tgt_addrs[i]`. Data travels as one message; the target scatters
  /// it in a (predefined) completion handler, then bumps tgt_cntr / notifies
  /// cmpl_cntr once for the whole vector. n is limited by the block table
  /// having to fit one packet (see kMaxVecBlocks).
  void putv(int tgt, int n, const Token* tgt_addrs, const void* const* srcs,
            const std::size_t* lens, Token tgt_cntr, Cntr* org_cntr, Cntr* cmpl_cntr);

  /// LAPI_Getv-style vector get: remote `tgt_addrs[i]`/`lens[i]` into local
  /// `dsts[i]`; org_cntr fires once everything has been scattered locally.
  void getv(int tgt, int n, const Token* tgt_addrs, void* const* dsts,
            const std::size_t* lens, Cntr* org_cntr);

  static constexpr int kMaxVecBlocks = 60;

  // --- counters ---
  void setcntr(Cntr& c, int value);
  [[nodiscard]] int getcntr(const Cntr& c);
  /// Wait until the counter reaches `value`, then decrement it by `value`.
  void waitcntr(Cntr& c, int value);

  // --- utility ---
  /// LAPI_Address_init: collective exchange of one token per task; returns
  /// the table indexed by task id. `exchange_id` must match across tasks.
  [[nodiscard]] std::vector<Token> address_init(std::uint64_t exchange_id, Token mine);

  /// LAPI_Fence: block until all messages this task sent to `tgt` have been
  /// delivered (transport-acknowledged).
  void fence(int tgt);
  /// LAPI_Gfence: fence to all targets, then barrier across all tasks.
  void gfence();

  [[nodiscard]] Env qenv() const;
  void senv_interrupt(bool on);
  /// The paper's §5.3 LAPI enhancement switch.
  void set_inline_completion_allowed(bool on) noexcept { inline_completion_allowed_ = on; }

  [[nodiscard]] int task_id() const noexcept { return task_id_; }
  [[nodiscard]] sim::NodeRuntime& runtime() noexcept { return node_; }
  [[nodiscard]] hal::Hal& hal() noexcept { return hal_; }

  // --- statistics ---
  [[nodiscard]] std::int64_t messages_sent() const noexcept { return messages_sent_; }
  [[nodiscard]] std::int64_t header_handlers_run() const noexcept { return header_handlers_run_; }
  [[nodiscard]] std::int64_t completion_thread_dispatches() const noexcept {
    return completion_thread_dispatches_;
  }
  [[nodiscard]] std::int64_t completion_inline_runs() const noexcept {
    return completion_inline_runs_;
  }
  [[nodiscard]] std::int64_t retransmits() const;
  /// Duplicate packet deliveries filtered by this task's links (fabric dups
  /// and go-back-N re-deliveries both land here).
  [[nodiscard]] std::int64_t duplicate_deliveries() const;
  /// Reliability data packets this task's links put on the wire (first sends;
  /// retransmits are counted separately).
  [[nodiscard]] std::int64_t link_packets_sent() const;
  /// Transport acks this task's links put on the wire.
  [[nodiscard]] std::int64_t acks_sent() const;
  /// Duplicate deliveries folded into delayed ack flushes (re-ack coalescing).
  [[nodiscard]] std::int64_t reacks_coalesced() const;

  /// Test hook: the reliable link toward `peer` (sequence-wrap tests).
  [[nodiscard]] ReliableLink& link_for_test(int peer) { return link(peer); }

  /// Convert a local pointer to a Token (for address_init).
  template <typename T>
  [[nodiscard]] static Token token_of(T* p) noexcept {
    return reinterpret_cast<Token>(p);
  }

  /// RAII guard marking dispatcher/event-context execution: LAPI calls made
  /// under it charge no application-thread time (they run on the protocol
  /// engine, like completion handlers do). Layers built on LAPI use this for
  /// work they schedule as simulator events.
  class CallbackScope {
   public:
    explicit CallbackScope(Lapi& l) noexcept : l_(l), prev_(l.in_callback_) {
      l_.in_callback_ = true;
    }
    ~CallbackScope() { l_.in_callback_ = prev_; }
    CallbackScope(const CallbackScope&) = delete;
    CallbackScope& operator=(const CallbackScope&) = delete;

   private:
    Lapi& l_;
    bool prev_;
  };

 private:
  struct Reassembly {
    std::byte* buffer = nullptr;
    bool resolved = false;  ///< Header handler ran / address known.
    std::size_t received = 0;
    std::size_t total = 0;
    PktHdr meta;  ///< From the packet that created the state.
    CompletionFn completion;
    void* cookie = nullptr;
    bool inline_completion = false;
    /// Packets that arrived before the header handler could run.
    std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> stash;
  };

  ReliableLink& link(int peer);
  void on_hal_packet(int src, std::span<const std::byte> bytes);
  void on_data_packet(const PktHdr& h, std::span<const std::byte> payload);
  void handle_get_request(const PktHdr& h);
  void handle_getv_request(const PktHdr& h, const std::byte* body);
  void handle_rmw_request(const PktHdr& h);
  void place_data(Reassembly& r, std::uint32_t offset, const std::byte* data, std::size_t len);
  void finish_message(std::uint64_t key_origin, std::uint64_t msg_id);
  void bump_local(Cntr* c);
  void bump_local_token(Token t);
  void send_internal(int tgt, PktHdr meta, std::vector<std::byte> owned_data);
  void maybe_app_charge(sim::TimeNs cost);
  void check_not_in_header_handler(const char* fn) const;

  sim::NodeRuntime& node_;
  hal::Hal& hal_;
  LapiGroup& group_;
  int task_id_;

  std::vector<HeaderHandler> handlers_;
  std::vector<std::unique_ptr<ReliableLink>> links_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, Reassembly> reass_;
  std::uint64_t next_msg_id_ = 1;

  bool in_header_handler_ = false;
  bool in_callback_ = false;
  bool inline_completion_allowed_ = false;

  // Internal gfence barrier state (dissemination rounds).
  std::array<Cntr, 32> barrier_cntrs_;
  int internal_barrier_handler_ = -1;

  // Vector-transfer internals (putv/getv).
  int internal_vec_put_handler_ = -1;
  int internal_getv_reply_handler_ = -1;
  struct GetvPending {
    std::vector<void*> dsts;
    std::vector<std::size_t> lens;
    Cntr* org = nullptr;
  };
  std::map<std::uint32_t, GetvPending> pending_getv_;
  std::uint32_t next_getv_id_ = 1;

  std::int64_t messages_sent_ = 0;
  std::int64_t header_handlers_run_ = 0;
  std::int64_t completion_thread_dispatches_ = 0;
  std::int64_t completion_inline_runs_ = 0;
};

}  // namespace sp::lapi
