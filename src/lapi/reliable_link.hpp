// Per-peer reliable packet channel used by the LAPI transport.
//
// The origin side paces message packets with a sliding window, stores sent
// packets for retransmission, and frees them on (cumulative) acknowledgement.
// The target side filters duplicates and generates coalesced acks. Unlike the
// Pipes byte stream, packets are *delivered upward out of order* — LAPI
// reassembles at offsets — so only the reliability bookkeeping is ordered.
//
// Packet materialization is lazy: a submitted message borrows its data buffer
// and packets are built (charging the single origin-side copy into HAL
// staging) only as the window admits them; `on_origin_done` fires when the
// last byte has been copied out and the origin buffer is safe to reuse —
// exactly LAPI's org_cntr semantics.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "hal/hal.hpp"
#include "lapi/wire.hpp"
#include "sim/node_runtime.hpp"

namespace sp::lapi {

class ReliableLink {
 public:
  /// Transport personality. The default reproduces the LAPI link bit-exactly;
  /// the RDMA adapter (DESIGN.md §14) runs the same go-back-N machinery on
  /// its own HAL protocol with `nic_context = true`, which drops every host
  /// CPU charge (the origin-side staging copy and ack processing): the NIC
  /// engine gathers straight from registered memory and sinks acks itself.
  struct Profile {
    hal::ProtoId proto = hal::kProtoLapi;
    std::size_t header_bytes = 0;  ///< Modeled wire header; 0 = cfg.lapi_header_bytes.
    bool nic_context = false;
  };

  ReliableLink(sim::NodeRuntime& node, hal::Hal& hal, int peer)
      : ReliableLink(node, hal, peer, Profile{}) {}
  ReliableLink(sim::NodeRuntime& node, hal::Hal& hal, int peer, Profile profile);

  struct Message {
    PktHdr meta;                   ///< Template: kind/msg_id/total_len/tokens set by caller.
    std::vector<std::byte> uhdr;   ///< User header (first packet only; may be empty).
    const std::byte* data = nullptr;  ///< Borrowed data; must stay valid until on_origin_done.
    std::size_t len = 0;
    std::vector<std::byte> owned;  ///< Alternative owned data (control messages).
    std::function<void()> on_origin_done;  ///< Fires when data fully copied out.
  };

  /// Queue a message for transmission (FIFO per link).
  void submit(Message&& msg);

  /// Try to make progress (window + HAL space permitting).
  void pump();

  // --- target side ---
  /// Record an incoming sequenced packet (32-bit wire form, unwrapped against
  /// the receive cursor). Returns true if fresh (deliver it), false for
  /// duplicates (our cumulative position is re-advertised, coalesced to at
  /// most one immediate re-ack per duplicate burst).
  [[nodiscard]] bool accept(std::uint32_t pkt_seq);
  /// Process an acknowledgement for everything <= cum (32-bit wire form).
  void on_ack(std::uint32_t cum);

  /// True when nothing is queued or awaiting acknowledgement (fence support).
  [[nodiscard]] bool drained() const noexcept {
    return queue_.empty() && store_.empty();
  }
  sim::SimCondition& drained_cond() noexcept { return drained_cond_; }

  [[nodiscard]] std::int64_t retransmits() const noexcept { return retransmits_; }
  [[nodiscard]] std::int64_t packets_sent() const noexcept { return data_packets_sent_; }
  [[nodiscard]] std::int64_t duplicates() const noexcept { return duplicates_; }
  [[nodiscard]] std::int64_t acks_sent() const noexcept { return acks_sent_; }
  /// Duplicate deliveries folded into the delayed ack flush instead of each
  /// earning an immediate re-ack (the PR 2 coalescing fix at work; the
  /// conformance explorer asserts this stays proportional to duplicates).
  [[nodiscard]] std::int64_t reacks_coalesced() const noexcept { return reacks_coalesced_; }

  /// Test hook: start both reliability cursors at `base` as if `base` packets
  /// had already been exchanged (exercises 32-bit wire wrap). Call on the
  /// origin-side link and the matching target-side link before any traffic.
  void fast_forward_seq(std::uint64_t base) noexcept {
    next_seq_ = base + 1;
    acked_ = base;
    cum_in_ = base;
  }

 private:
  struct Stored {
    /// Serialized packet (hdr + uhdr + data); arena-backed, released on ack.
    std::vector<std::byte> payload;
    std::size_t modeled_bytes = 0;
    sim::TimeNs sent_at = 0;
  };

  struct Pending {
    Message msg;
    std::size_t next_offset = 0;
    bool first_sent = false;
  };

  void materialize_one();
  void send_ack();
  void schedule_ack_flush();
  void schedule_retransmit_check();
  [[nodiscard]] const std::byte* data_ptr(const Pending& p) const noexcept;
  [[nodiscard]] std::size_t data_len(const Pending& p) const noexcept;

  [[nodiscard]] std::size_t header_bytes() const noexcept {
    return profile_.header_bytes != 0 ? profile_.header_bytes : node_.cfg.lapi_header_bytes;
  }
  [[nodiscard]] bool hal_send(std::span<const std::byte> payload, std::size_t modeled);

  sim::NodeRuntime& node_;
  hal::Hal& hal_;
  int peer_;
  Profile profile_;

  // Origin side. Sequence bookkeeping is 64-bit internally; the wire carries
  // the low 32 bits and receivers unwrap (see wire.hpp unwrap_seq), so the
  // protocol survives 32-bit wire wrap.
  std::deque<Pending> queue_;
  std::map<std::uint64_t, Stored> store_;  ///< Unacked, keyed by pkt_seq.
  std::uint64_t next_seq_ = 1;
  std::uint64_t acked_ = 0;  ///< Highest cumulatively acked seq.
  bool retransmit_scheduled_ = false;
  bool waiting_for_space_ = false;  ///< A one-shot HAL space waiter is armed.
  sim::SimCondition drained_cond_;

  // Target side.
  std::uint64_t cum_in_ = 0;  ///< Highest contiguous seq received.
  std::set<std::uint64_t> ooo_in_;
  int unacked_count_ = 0;       ///< Fresh packets since the last ack (coalescing).
  bool ack_pending_ = false;    ///< An ack send is owed (fresh data or dup re-ack).
  bool ack_flush_scheduled_ = false;
  /// When the last immediate duplicate re-ack went out; further duplicates
  /// within ack_delay_ns coalesce into the delayed flush instead of each
  /// triggering an ack (a go-back-N burst would otherwise ack-storm).
  sim::TimeNs last_reack_at_ = kNeverReacked;
  static constexpr sim::TimeNs kNeverReacked = -(1LL << 62);

  std::int64_t retransmits_ = 0;
  std::int64_t data_packets_sent_ = 0;
  std::int64_t duplicates_ = 0;
  std::int64_t acks_sent_ = 0;
  std::int64_t reacks_coalesced_ = 0;
};

}  // namespace sp::lapi
