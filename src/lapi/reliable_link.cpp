#include "lapi/reliable_link.hpp"

#include <cassert>
#include <cmath>
#include <utility>

namespace sp::lapi {

namespace {
[[nodiscard]] sim::TimeNs copy_cost(const sim::MachineConfig& cfg, std::size_t bytes) {
  return cfg.copy_call_ns +
         static_cast<sim::TimeNs>(std::llround(cfg.copy_ns_per_byte * static_cast<double>(bytes)));
}

/// Floor when re-arming the retransmit timer: an already-expired deadline
/// (e.g. a HAL-full retry) must not respin at the current instant.
constexpr sim::TimeNs kMinRetryDelayNs = 1'000;
}  // namespace

ReliableLink::ReliableLink(sim::NodeRuntime& node, hal::Hal& hal, int peer, Profile profile)
    : node_(node), hal_(hal), peer_(peer), profile_(profile) {}

bool ReliableLink::hal_send(std::span<const std::byte> payload, std::size_t modeled) {
  return profile_.nic_context ? hal_.send_packet_nic(peer_, profile_.proto, payload, modeled)
                              : hal_.send_packet(peer_, profile_.proto, payload, modeled);
}

const std::byte* ReliableLink::data_ptr(const Pending& p) const noexcept {
  return p.msg.owned.empty() ? p.msg.data : p.msg.owned.data();
}

std::size_t ReliableLink::data_len(const Pending& p) const noexcept {
  return p.msg.owned.empty() ? p.msg.len : p.msg.owned.size();
}

void ReliableLink::submit(Message&& msg) {
  queue_.push_back(Pending{std::move(msg), 0, false});
  pump();
}

void ReliableLink::pump() {
  const auto window = static_cast<std::uint32_t>(node_.cfg.sliding_window_packets);
  while (!queue_.empty() && (next_seq_ - 1) - acked_ < window) {
    if (hal_.send_buffers_in_use() >= node_.cfg.hal_send_buffers) {
      // Blocked on HAL send buffers (not the window): arm a one-shot waiter
      // so only links that actually stalled get woken when a buffer frees.
      if (!waiting_for_space_) {
        waiting_for_space_ = true;
        hal_.wait_send_space([this] {
          waiting_for_space_ = false;
          pump();
        });
      }
      break;
    }
    materialize_one();
  }
}

void ReliableLink::materialize_one() {
  assert(!queue_.empty());
  Pending& p = queue_.front();
  const std::size_t total = data_len(p);
  const bool first = !p.first_sent;
  const std::size_t uhdr_len = first ? p.msg.uhdr.size() : 0;
  assert(uhdr_len <= node_.cfg.packet_mtu && "user header exceeds packet capacity");
  const std::size_t capacity = node_.cfg.packet_mtu - uhdr_len;
  const std::size_t remaining = total - p.next_offset;
  const std::size_t chunk = remaining < capacity ? remaining : capacity;

  PktHdr h = p.msg.meta;
  const std::uint64_t seq = next_seq_++;
  h.pkt_seq = static_cast<std::uint32_t>(seq);
  h.offset = static_cast<std::uint32_t>(p.next_offset);
  h.data_len = static_cast<std::uint32_t>(chunk);
  h.total_len = static_cast<std::uint32_t>(total);
  h.flags = first ? kFlagFirst : 0;
  h.uhdr_len = static_cast<std::uint16_t>(uhdr_len);

  std::vector<std::byte> payload = hal_.arena().acquire(0);
  payload.reserve(sizeof(PktHdr) + uhdr_len + chunk);
  append_hdr(payload, h);
  if (first && uhdr_len > 0) {
    payload.insert(payload.end(), p.msg.uhdr.begin(), p.msg.uhdr.end());
  }
  if (chunk > 0) {
    const std::byte* src = data_ptr(p) + p.next_offset;
    payload.insert(payload.end(), src, src + chunk);
  }
  // The single LAPI origin-side copy: user buffer -> HAL staging. The NIC
  // profile gathers straight from registered memory (zero host copies).
  if (!profile_.nic_context) {
    node_.cpu.charge(node_.sim, copy_cost(node_.cfg, chunk + uhdr_len));
  }

  const std::size_t modeled = header_bytes() + uhdr_len + chunk;
  const bool sent = hal_send(payload, modeled);
  assert(sent && "pump() checked for HAL space");
  (void)sent;
  ++data_packets_sent_;

  store_.emplace(seq, Stored{std::move(payload), modeled, node_.sim.now()});
  schedule_retransmit_check();

  p.first_sent = true;
  p.next_offset += chunk;
  if (p.next_offset >= total) {
    auto done = std::move(p.msg.on_origin_done);
    queue_.pop_front();
    if (done) done();
  }
}

void ReliableLink::on_ack(std::uint32_t cum_wire) {
  if (!profile_.nic_context) node_.cpu.charge(node_.sim, node_.cfg.ack_processing_ns);
  const std::uint64_t cum = unwrap_seq(acked_, cum_wire);
  if (cum > acked_) acked_ = cum;
  const auto last = store_.upper_bound(cum);
  for (auto it = store_.begin(); it != last; ++it) {
    hal_.arena().release(std::move(it->second.payload));
  }
  store_.erase(store_.begin(), last);
  pump();
  if (drained()) drained_cond_.notify_all(node_.sim);
}

bool ReliableLink::accept(std::uint32_t seq_wire) {
  const std::uint64_t pkt_seq = unwrap_seq(cum_in_, seq_wire);
  const bool dup = pkt_seq <= cum_in_ || ooo_in_.count(pkt_seq) != 0;
  if (dup) {
    ++duplicates_;
    SP_TELEM(node_, sim::Ev::kLapiDupRecv, static_cast<std::uint64_t>(peer_), pkt_seq);
    // Re-advertise our cumulative position so the origin's retransmit loop
    // terminates, but coalesce: a go-back-N burst of N duplicates earns one
    // immediate re-ack; the rest fold into the delayed flush.
    // debug_disable_reack_coalescing re-introduces the PR 2 ack storm for the
    // conformance explorer's self-test; it must never be set otherwise.
    if (node_.cfg.debug_disable_reack_coalescing ||
        node_.sim.now() - last_reack_at_ >= node_.cfg.ack_delay_ns) {
      last_reack_at_ = node_.sim.now();
      ack_pending_ = true;
      send_ack();
    } else {
      ++reacks_coalesced_;
      ack_pending_ = true;
      schedule_ack_flush();
    }
    return false;
  }
  ooo_in_.insert(pkt_seq);
  while (!ooo_in_.empty() && *ooo_in_.begin() == cum_in_ + 1) {
    ooo_in_.erase(ooo_in_.begin());
    ++cum_in_;
  }
  ++unacked_count_;
  ack_pending_ = true;
  if (unacked_count_ >= node_.cfg.ack_every_packets) {
    send_ack();
  } else {
    schedule_ack_flush();
  }
  return true;
}

void ReliableLink::send_ack() {
  PktHdr h;
  h.kind = static_cast<std::uint8_t>(Kind::kAck);
  h.pkt_seq = static_cast<std::uint32_t>(cum_in_);
  h.origin = static_cast<std::uint32_t>(hal_.node());
  std::vector<std::byte> payload;
  append_hdr(payload, h);
  if (!profile_.nic_context) node_.cpu.charge(node_.sim, node_.cfg.ack_processing_ns);
  if (hal_send(payload, header_bytes())) {
    unacked_count_ = 0;
    ack_pending_ = false;
    ++acks_sent_;
    SP_TELEM(node_, sim::Ev::kLapiAck, static_cast<std::uint64_t>(peer_), cum_in_);
  } else {
    // HAL full: the ack stays owed; retry from the flush timer. ack_pending_
    // (not unacked_count_) records the debt so a duplicate re-ack — which
    // arrives with unacked_count_ == 0 — is retried too, instead of leaving
    // the origin stuck on its retransmit timer.
    ack_pending_ = true;
    schedule_ack_flush();
  }
}

void ReliableLink::schedule_ack_flush() {
  if (ack_flush_scheduled_) return;
  ack_flush_scheduled_ = true;
  node_.sim.after(node_.cfg.ack_delay_ns, sim::sched_node_key(node_.node), [this] {
    ack_flush_scheduled_ = false;
    if (ack_pending_) send_ack();
  });
}

void ReliableLink::schedule_retransmit_check() {
  if (retransmit_scheduled_ || store_.empty()) return;
  retransmit_scheduled_ = true;
  // Fire when the *oldest* unacked packet reaches its timeout — re-arming a
  // full timeout from now would let a loss linger for up to 2x the timeout.
  // The floor keeps a HAL-full retry from spinning at the current instant.
  const sim::TimeNs deadline =
      store_.begin()->second.sent_at + node_.cfg.retransmit_timeout_ns;
  sim::TimeNs delay = deadline - node_.sim.now();
  if (delay < kMinRetryDelayNs) delay = kMinRetryDelayNs;
  node_.sim.after(delay, sim::sched_node_key(node_.node), [this] {
    retransmit_scheduled_ = false;
    if (store_.empty()) return;
    const sim::TimeNs age = node_.sim.now() - store_.begin()->second.sent_at;
    if (age >= node_.cfg.retransmit_timeout_ns) {
      // Go-back-N: resend everything unacknowledged.
      for (auto& [seq, s] : store_) {
        if (hal_send(s.payload, s.modeled_bytes)) {
          s.sent_at = node_.sim.now();
          ++retransmits_;
          SP_TELEM(node_, sim::Ev::kLapiRetransmit, static_cast<std::uint64_t>(peer_), seq);
        } else {
          break;  // HAL full; the rescheduled check will retry
        }
      }
    }
    schedule_retransmit_check();
  });
}

}  // namespace sp::lapi
