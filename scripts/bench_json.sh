#!/usr/bin/env sh
# Run the simulator-core benchmark and refresh BENCH_simcore.json.
#
# Usage: scripts/bench_json.sh [build-dir] [reps]
#   build-dir  CMake build tree containing bench/bench_simcore (default: build)
#   reps       repetitions per workload; the minimum wall time is kept
#              (default: 5)
#
# Build the tree in Release (the default CMAKE_BUILD_TYPE) first:
#   cmake -B build -S . && cmake --build build -j
set -eu

repo_root="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
reps="${2:-5}"
bench="$build_dir/bench/bench_simcore"

if [ ! -x "$bench" ]; then
  echo "error: $bench not found or not executable; build the tree first" >&2
  exit 1
fi

"$bench" --reps "$reps" --json "$repo_root/BENCH_simcore.json"
echo "wrote $repo_root/BENCH_simcore.json"
