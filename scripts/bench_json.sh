#!/usr/bin/env sh
# Run the JSON-emitting benchmarks and refresh the committed BENCH_*.json
# artifacts: BENCH_simcore.json (simulator-core host throughput) and
# BENCH_collectives.json (collective-engine cutover sweep, simulated time).
#
# Usage: scripts/bench_json.sh [build-dir] [reps]
#   build-dir  CMake build tree containing bench/ binaries (default: build)
#   reps       repetitions per simcore workload; the minimum wall time is
#              kept (default: 5). The collectives sweep is simulated-time and
#              deterministic, so it has no reps knob.
#
# Build the tree in Release (the default CMAKE_BUILD_TYPE) first:
#   cmake -B build -S . && cmake --build build -j
set -eu

repo_root="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
reps="${2:-5}"

for bench in bench_simcore bench_collectives; do
  if [ ! -x "$build_dir/bench/$bench" ]; then
    echo "error: $build_dir/bench/$bench not found or not executable; build the tree first" >&2
    exit 1
  fi
done

"$build_dir/bench/bench_simcore" --reps "$reps" --json "$repo_root/BENCH_simcore.json"
echo "wrote $repo_root/BENCH_simcore.json"

"$build_dir/bench/bench_collectives" --json "$repo_root/BENCH_collectives.json"
echo "wrote $repo_root/BENCH_collectives.json"
