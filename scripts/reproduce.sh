#!/usr/bin/env bash
# Reproduce every result: build, full test suite, every paper figure/table,
# the ablations and the micro benchmarks. Outputs land in ./results.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
mkdir -p results

ctest --test-dir build --output-on-failure 2>&1 | tee results/tests.txt

for b in build/bench/*; do
  name=$(basename "$b")
  echo "== $name"
  "$b" 2>&1 | tee "results/$name.txt"
done
echo "done; see ./results"
